(* Tests for lib/inject: deterministic fault derivation, engine
   classification (including the paper's reload-window asymmetry between
   the masked and unmasked PACStack variants), the campaign wiring, and
   the exact trap paths of corrupted returns. *)

module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Reg = Pacstack_isa.Reg
module Instr = Pacstack_isa.Instr
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Memory = Pacstack_machine.Memory
module Image = Pacstack_machine.Image
module Trap = Pacstack_machine.Trap
module Compile = Pacstack_minic.Compile
module Fault = Pacstack_inject.Fault
module Victim = Pacstack_inject.Victim
module Engine = Pacstack_inject.Engine
module Campaign = Pacstack_campaign.Campaign
module Plans = Pacstack_report.Plans

let temp_manifest () = Filename.temp_file "pacstack_inject" ".ck"

let classification = Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Engine.classification_to_string c))
    (fun a b ->
      match (a, b) with
      | Engine.Detected _, Engine.Detected _ -> true
      | Engine.Benign, Engine.Benign | Engine.Silent, Engine.Silent -> true
      | _ -> false)

let first_site_index ~campaign_seed site =
  let rec go i =
    if i > 1000 then Alcotest.failf "no %s fault in 1000 indices" (Fault.site_to_string site)
    else if (Fault.derive ~campaign_seed i).Fault.site = site then i
    else go (i + 1)
  in
  go 0

(* --- fault derivation ----------------------------------------------------- *)

let test_derive_deterministic () =
  for i = 0 to 31 do
    let a = Fault.derive ~campaign_seed:9L i in
    let b = Fault.derive ~campaign_seed:9L i in
    Alcotest.(check bool) "specs equal" true (a = b);
    Alcotest.(check int) "index recorded" i a.Fault.index;
    Alcotest.(check bool) "trigger in (0,1)" true (a.Fault.trigger > 0. && a.Fault.trigger < 1.);
    Alcotest.(check bool) "flip nonzero" true (a.Fault.flip <> 0L)
  done;
  (* different seeds and indices give different streams *)
  Alcotest.(check bool) "seed matters" true
    (List.init 16 (Fault.derive ~campaign_seed:9L) <> List.init 16 (Fault.derive ~campaign_seed:10L))

let test_site_string_roundtrip () =
  Array.iter
    (fun site ->
      Alcotest.(check bool) "roundtrip" true
        (Fault.site_of_string (Fault.site_to_string site) = Some site))
    Fault.all_sites;
  Alcotest.(check bool) "unknown rejected" true (Fault.site_of_string "nonsense" = None)

(* --- engine classification ------------------------------------------------ *)

let test_run_fault_deterministic () =
  let cfg = Engine.default_config in
  for i = 0 to 5 do
    let a = Engine.run_fault cfg ~campaign_seed:3L i in
    let b = Engine.run_fault cfg ~campaign_seed:3L i in
    List.iter2
      (fun (x : Engine.result) (y : Engine.result) ->
        Alcotest.check classification
          (Printf.sprintf "fault %d under %s" i (Scheme.to_string x.Engine.scheme))
          x.Engine.classification y.Engine.classification)
      a b
  done

(* The §5.2/§6.1 headline: the same reload-window substitution is silent
   under the unmasked variant (the adversary collision-matches harvested
   aret values at the observable pac_bits = 4) but is caught — or lands
   benign — under the masked variant, where the spilled tokens are
   opaque and the pick succeeds only with probability 2^-b. *)
let test_window_masked_vs_unmasked () =
  let seed = 42L in
  let idx = first_site_index ~campaign_seed:seed Fault.Reload_window in
  let cfg = { Engine.default_config with Engine.schemes = [ Scheme.pacstack_nomask; Scheme.pacstack ] } in
  match Engine.run_fault cfg ~campaign_seed:seed idx with
  | [ nomask; masked ] ->
    Alcotest.check classification "unmasked pacstack: silent corruption" Engine.Silent
      nomask.Engine.classification;
    Alcotest.(check bool) "masked pacstack: detected or benign" true
      (match masked.Engine.classification with
      | Engine.Detected _ | Engine.Benign -> true
      | Engine.Silent -> false)
  | _ -> Alcotest.fail "expected two results"

(* The same window fault is silent under every non-authenticating
   scheme: the harvested control words are valid for reuse. *)
let test_window_silent_without_authentication () =
  let seed = 42L in
  let idx = first_site_index ~campaign_seed:seed Fault.Reload_window in
  let cfg =
    {
      Engine.default_config with
      Engine.schemes = [ Scheme.unprotected; Scheme.branch_protection; Scheme.shadow_stack ];
    }
  in
  List.iter
    (fun (r : Engine.result) ->
      Alcotest.check classification
        (Scheme.to_string r.Engine.scheme ^ ": window reuse is silent")
        Engine.Silent r.Engine.classification)
    (Engine.run_fault cfg ~campaign_seed:seed idx)

(* Signal-frame forgery: killed by the Appendix B chain under PACStack,
   never detected as such under an unprotected kernel. *)
let test_signal_frame_chained_vs_unprotected () =
  let seed = 42L in
  let idx = first_site_index ~campaign_seed:seed Fault.Signal_frame in
  let cfg =
    { Engine.default_config with Engine.schemes = [ Scheme.unprotected; Scheme.pacstack ] }
  in
  match Engine.run_fault cfg ~campaign_seed:seed idx with
  | [ unprotected; pacstack ] ->
    Alcotest.(check bool) "unprotected kernel never reports sigreturn-kill" true
      (match unprotected.Engine.classification with
      | Engine.Detected { cause; _ } -> cause <> "sigreturn-kill"
      | Engine.Benign | Engine.Silent -> true);
    Alcotest.(check bool) "pacstack kernel kills the forged frame" true
      (match pacstack.Engine.classification with
      | Engine.Detected { cause; _ } -> cause = "sigreturn-kill"
      | Engine.Benign | Engine.Silent -> false)
  | _ -> Alcotest.fail "expected two results"

(* --- trap paths of corrupted returns -------------------------------------- *)

(* Run the victim with one corruption applied at the first window-hook
   firing, tracing every instruction so the faulting one is known
   exactly. Returns (outcome, last traced instruction). *)
let run_corrupted ~scheme ~corrupt =
  let compiled = Compile.compile ~scheme (Victim.program ()) in
  let m = Machine.load ~cfg:(Config.make ~pac_bits:4 ()) compiled in
  let fired = ref false in
  Machine.attach_hook m Victim.window_hook (fun hm ->
      if not !fired then begin
        fired := true;
        corrupt hm
      end);
  let last = ref None in
  Machine.set_tracer m (Some (fun _ instr -> last := Some instr));
  let outcome = Machine.run m in
  (outcome, !last)

let xor_mem m addr pattern =
  let mem = Machine.memory m in
  Memory.store64 mem addr (Int64.logxor (Memory.load64 mem addr) pattern)

let is_ret = function Some (Instr.Ret _) -> true | _ -> false

(* PACStack: corrupting the spilled chain value changes the [autia]
   modifier in the epilogue that reloads it; the authenticated LR comes
   out non-canonical and the subsequent [ret] raises a translation
   fault on the instruction fetch.  (The other trap variants are not
   reachable from a corrupted aret: the error bit makes the pointer
   non-canonical before any mapping or permission question arises, and
   returns are not subject to the forward-edge CFI check, so
   [Cfi_violation] and [Undefined] cannot fire on this path.) *)
let test_pacstack_chain_corruption_trap () =
  List.iter
    (fun scheme ->
      let outcome, last =
        run_corrupted ~scheme ~corrupt:(fun hm ->
            xor_mem hm (Int64.sub (Machine.get hm Reg.fp) 16L) 4L)
      in
      (match outcome with
      | Machine.Faulted (Trap.Translation (addr, Trap.Execute)) ->
        Alcotest.(check bool) "faulting address is non-canonical" true
          (Int64.logand addr Int64.min_int <> 0L || Int64.shift_right_logical addr 55 <> 0L)
      | other ->
        Alcotest.failf "%s: expected translation fault, got %s" (Scheme.to_string scheme)
          (match other with
          | Machine.Faulted t -> Trap.to_string t
          | Machine.Halted c -> Printf.sprintf "exit %d" c
          | Machine.Out_of_fuel -> "out of fuel"));
      Alcotest.(check bool) "trap raised at the ret" true (is_ret last))
    [ Scheme.pacstack; Scheme.pacstack_nomask ]

(* Shadow stack: the shadow value is authoritative on return, so a
   corrupted top entry redirects the [ret].  A flip into unmapped space
   raises [Unmapped]; pointing the entry at a mapped rw data object
   raises [Permission] (execute of non-executable memory). *)
let test_shadow_corruption_traps () =
  let top hm = Int64.sub (Machine.get hm Reg.shadow) 8L in
  let outcome, last =
    run_corrupted ~scheme:Scheme.shadow_stack ~corrupt:(fun hm ->
        xor_mem hm (top hm) (Int64.shift_left 1L 30))
  in
  (match outcome with
  | Machine.Faulted (Trap.Unmapped (_, Trap.Execute)) -> ()
  | other ->
    Alcotest.failf "expected unmapped fault, got %s"
      (match other with
      | Machine.Faulted t -> Trap.to_string t
      | Machine.Halted c -> Printf.sprintf "exit %d" c
      | Machine.Out_of_fuel -> "out of fuel"));
  Alcotest.(check bool) "unmapped trap at the ret" true (is_ret last);
  let outcome, last =
    run_corrupted ~scheme:Scheme.shadow_stack ~corrupt:(fun hm ->
        let guard = Option.get (Image.symbol (Machine.image hm) Machine.canary_symbol) in
        Memory.store64 (Machine.memory hm) (top hm) guard)
  in
  (match outcome with
  | Machine.Faulted (Trap.Permission (_, Trap.Execute)) -> ()
  | other ->
    Alcotest.failf "expected permission fault, got %s"
      (match other with
      | Machine.Faulted t -> Trap.to_string t
      | Machine.Halted c -> Printf.sprintf "exit %d" c
      | Machine.Out_of_fuel -> "out of fuel"));
  Alcotest.(check bool) "permission trap at the ret" true (is_ret last)

(* --- campaign wiring ------------------------------------------------------ *)

let stats_equal (a : Engine.stats) (b : Engine.stats) = a = b

let test_campaign_worker_independence () =
  let plan () = Plans.inject_plan ~faults:10 ~shards:4 ~seed:5L () in
  let t1 = Plans.inject_totals (Campaign.run ~workers:1 (plan ())) in
  let t4 = Plans.inject_totals (Campaign.run ~workers:4 (plan ())) in
  Alcotest.(check bool) "1 worker = 4 workers" true (stats_equal t1 t4);
  Alcotest.(check int) "all faults ran" 10 t1.Engine.faults

let test_campaign_resume_identical () =
  let path = temp_manifest () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let plan () = Plans.inject_plan ~faults:8 ~shards:4 ~seed:5L () in
      let run () =
        Plans.inject_totals
          (Campaign.run ~workers:1 ~checkpoint:(path, Plans.inject_codec) (plan ()))
      in
      let first = run () in
      let resumed_outcome =
        Campaign.run ~workers:1 ~checkpoint:(path, Plans.inject_codec) (plan ())
      in
      Alcotest.(check int) "all shards restored" 4 resumed_outcome.Campaign.resumed;
      Alcotest.(check bool) "resume = uninterrupted" true
        (stats_equal first (Plans.inject_totals resumed_outcome)))

(* A planted always-silent fault (the test-only tamper hook corrupts
   observable output without touching any control word) must surface as
   silent corruption under every scheme — this is what the CLI gate and
   the CI campaign would catch with exit 1. *)
let test_planted_tamper_is_caught () =
  let tamper m = Machine.push_output m 999L in
  let faults = 4 in
  let outcome =
    Campaign.run ~workers:1
      (Plans.inject_plan ~schemes:[ Scheme.pacstack ] ~tamper ~faults ~shards:2 ~seed:5L ())
  in
  let totals = Plans.inject_totals outcome in
  let cell = List.assoc (Scheme.to_string Scheme.pacstack) totals.Engine.cells in
  Alcotest.(check int) "every planted fault is silent" faults cell.Engine.silent;
  Alcotest.(check int) "gate finds reproducers" faults (List.length totals.Engine.silents)

(* Regression (satellite fix): Signal_frame / Reload_window leaking into
   the generic injector used to die on [assert false] — an anonymous
   Assert_failure at engine.ml with no hint of which fault was misrouted.
   The typed error names the fault index and site, and because it is an
   ordinary exception the pool classifies it as a Crashed outcome
   (quarantining the shard) instead of killing the whole campaign. *)
let test_misrouted_site_names_culprit () =
  let contains msg needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1)) in
    go 0
  in
  let check site label =
    let msg = Printexc.to_string (Engine.Misrouted_site { index = 42; site }) in
    Alcotest.(check bool) ("names the fault: " ^ msg) true (contains msg "fault 42");
    Alcotest.(check bool) ("names the site: " ^ msg) true (contains msg label)
  in
  check Fault.Signal_frame "signal-frame";
  check Fault.Reload_window "reload-window"

(* --- statistics ----------------------------------------------------------- *)

let test_stats_json_roundtrip () =
  let stats = Engine.run_range Engine.default_config ~campaign_seed:7L ~first:0 ~count:6 in
  match Engine.stats_of_json (Engine.stats_to_json stats) with
  | None -> Alcotest.fail "stats did not parse back"
  | Some parsed -> Alcotest.(check bool) "roundtrip" true (stats_equal stats parsed)

let test_stats_merge_order_independent () =
  let cfg = Engine.default_config in
  let a = Engine.run_range cfg ~campaign_seed:7L ~first:0 ~count:3 in
  let b = Engine.run_range cfg ~campaign_seed:7L ~first:3 ~count:3 in
  let c = Engine.run_range cfg ~campaign_seed:7L ~first:6 ~count:3 in
  let left = Engine.merge (Engine.merge a b) c in
  let right = Engine.merge a (Engine.merge b c) in
  let swapped = Engine.merge (Engine.merge c b) a in
  Alcotest.(check bool) "associative" true (stats_equal left right);
  Alcotest.(check bool) "commutative" true (stats_equal left swapped);
  Alcotest.(check int) "all faults counted" 9 left.Engine.faults

(* --- mega sufficient statistics ------------------------------------------- *)

module Mega = Pacstack_inject.Mega

(* The streaming summary must agree with the O(events) Engine.stats it
   replaces: same counters per scheme over the same fault range. *)
let test_mega_agrees_with_engine_stats () =
  let cfg = Engine.default_config in
  let full = Engine.run_range cfg ~campaign_seed:7L ~first:0 ~count:12 in
  let mega = Mega.run_range cfg ~campaign_seed:7L ~first:0 ~count:12 in
  Alcotest.(check int) "fault counts agree" full.Engine.faults mega.Mega.faults;
  List.iter
    (fun (name, (c : Engine.cell)) ->
      match List.assoc_opt name mega.Mega.cells with
      | None -> Alcotest.failf "scheme %s missing from mega cells" name
      | Some (m : Mega.cell) ->
        Alcotest.(check int) (name ^ " detected") c.Engine.detected m.Mega.detected;
        Alcotest.(check int) (name ^ " benign") c.Engine.benign m.Mega.benign;
        Alcotest.(check int) (name ^ " silent") c.Engine.silent m.Mega.silent;
        Alcotest.(check int) (name ^ " histogram mass = detections") m.Mega.detected
          (Array.fold_left ( + ) 0 m.Mega.latency_hist))
    full.Engine.cells;
  Alcotest.(check bool) "reproducers are a prefix of the full silent list" true
    (List.for_all
       (fun (r : Engine.reproducer) ->
         List.exists (fun (s : Engine.reproducer) -> s = r) full.Engine.silents)
       mega.Mega.repro)

let test_mega_merge_order_independent () =
  let cfg = Engine.default_config in
  let a = Mega.run_range cfg ~campaign_seed:7L ~first:0 ~count:4 in
  let b = Mega.run_range cfg ~campaign_seed:7L ~first:4 ~count:4 in
  let c = Mega.run_range cfg ~campaign_seed:7L ~first:8 ~count:4 in
  let left = Mega.merge (Mega.merge a b) c in
  let right = Mega.merge a (Mega.merge b c) in
  let swapped = Mega.merge c (Mega.merge b a) in
  Alcotest.(check bool) "associative" true (left = right);
  Alcotest.(check bool) "commutative" true (left = swapped);
  Alcotest.(check int) "all faults counted" 12 left.Mega.faults;
  (* and the merged summary equals the single-range fold *)
  let whole = Mega.run_range cfg ~campaign_seed:7L ~first:0 ~count:12 in
  Alcotest.(check bool) "grouping-free" true (left = whole)

let test_mega_json_roundtrip () =
  let mega = Mega.run_range Engine.default_config ~campaign_seed:7L ~first:0 ~count:8 in
  match Mega.of_json (Mega.to_json mega) with
  | None -> Alcotest.fail "mega summary did not parse back"
  | Some parsed -> Alcotest.(check bool) "roundtrip" true (mega = parsed)

(* The retention cap: reproducers stay bounded at repro_cap however many
   silent events accumulate, the kept set is the smallest (fault, scheme)
   keys, and the drop count is derivable. *)
let test_mega_reproducer_cap () =
  let mk fault = { Engine.fault; scheme = "s"; site = "return-slot" } in
  let silent_result fault =
    { Engine.spec = Fault.derive ~campaign_seed:1L fault;
      scheme = Scheme.unprotected;
      classification = Engine.Silent }
  in
  let t =
    List.fold_left
      (fun t i -> Mega.add_result t (silent_result i))
      Mega.empty
      (List.init (2 * Mega.repro_cap) (fun i -> i))
  in
  Alcotest.(check int) "capped" Mega.repro_cap (List.length t.Mega.repro);
  Alcotest.(check int) "dropped = silent - kept" Mega.repro_cap (Mega.repro_dropped t);
  List.iteri
    (fun i (r : Engine.reproducer) ->
      Alcotest.(check int) "smallest keys kept, sorted" i r.Engine.fault)
    t.Mega.repro;
  ignore (mk 0)

let test_mega_latency_histogram () =
  Alcotest.(check int) "latency 0" 0 (Mega.bucket 0);
  Alcotest.(check int) "latency 1" 0 (Mega.bucket 1);
  Alcotest.(check int) "latency 2" 1 (Mega.bucket 2);
  Alcotest.(check int) "latency 3" 2 (Mega.bucket 3);
  Alcotest.(check int) "latency 4" 2 (Mega.bucket 4);
  Alcotest.(check int) "latency 5" 3 (Mega.bucket 5);
  Alcotest.(check int) "max_int saturates" (Mega.hist_buckets - 1) (Mega.bucket max_int);
  (* percentile: None without detections, within one bucket otherwise *)
  let mega = Mega.run_range Engine.default_config ~campaign_seed:7L ~first:0 ~count:8 in
  List.iter
    (fun ((_ : string), (c : Mega.cell)) ->
      match Mega.latency_percentile c 95.0 with
      | None -> Alcotest.(check int) "None only without detections" 0 c.Mega.detected
      | Some p -> Alcotest.(check bool) "p95 positive and finite" true (p >= 0. && Float.is_finite p))
    mega.Mega.cells

let () =
  Alcotest.run "inject"
    [
      ( "fault",
        [
          Alcotest.test_case "derivation deterministic" `Quick test_derive_deterministic;
          Alcotest.test_case "site strings roundtrip" `Quick test_site_string_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "run_fault deterministic" `Quick test_run_fault_deterministic;
          Alcotest.test_case "window: masked vs unmasked" `Quick test_window_masked_vs_unmasked;
          Alcotest.test_case "window: silent without authentication" `Quick
            test_window_silent_without_authentication;
          Alcotest.test_case "signal frame: chained vs unprotected" `Quick
            test_signal_frame_chained_vs_unprotected;
        ] );
      ( "traps",
        [
          Alcotest.test_case "pacstack chain corruption" `Quick
            test_pacstack_chain_corruption_trap;
          Alcotest.test_case "shadow slot corruption" `Quick test_shadow_corruption_traps;
          Alcotest.test_case "misrouted site names the culprit" `Quick
            test_misrouted_site_names_culprit;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "worker independence" `Quick test_campaign_worker_independence;
          Alcotest.test_case "resume identical" `Quick test_campaign_resume_identical;
          Alcotest.test_case "planted tamper caught" `Quick test_planted_tamper_is_caught;
        ] );
      ( "stats",
        [
          Alcotest.test_case "json roundtrip" `Quick test_stats_json_roundtrip;
          Alcotest.test_case "merge order independent" `Quick test_stats_merge_order_independent;
        ] );
      ( "mega",
        [
          Alcotest.test_case "agrees with engine stats" `Quick
            test_mega_agrees_with_engine_stats;
          Alcotest.test_case "merge order independent" `Quick
            test_mega_merge_order_independent;
          Alcotest.test_case "json roundtrip" `Quick test_mega_json_roundtrip;
          Alcotest.test_case "reproducer cap" `Quick test_mega_reproducer_cap;
          Alcotest.test_case "latency histogram" `Quick test_mega_latency_histogram;
        ] );
    ]
