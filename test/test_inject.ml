(* Tests for lib/inject: deterministic fault derivation, engine
   classification (including the paper's reload-window asymmetry between
   the masked and unmasked PACStack variants), the campaign wiring, and
   the exact trap paths of corrupted returns. *)

module Rng = Pacstack_util.Rng
module Config = Pacstack_pa.Config
module Reg = Pacstack_isa.Reg
module Instr = Pacstack_isa.Instr
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Memory = Pacstack_machine.Memory
module Image = Pacstack_machine.Image
module Trap = Pacstack_machine.Trap
module Compile = Pacstack_minic.Compile
module Fault = Pacstack_inject.Fault
module Victim = Pacstack_inject.Victim
module Engine = Pacstack_inject.Engine
module Campaign = Pacstack_campaign.Campaign
module Plans = Pacstack_report.Plans

let temp_manifest () = Filename.temp_file "pacstack_inject" ".ck"

let classification = Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Engine.classification_to_string c))
    (fun a b ->
      match (a, b) with
      | Engine.Detected _, Engine.Detected _ -> true
      | Engine.Benign, Engine.Benign | Engine.Silent, Engine.Silent -> true
      | _ -> false)

let first_site_index ~campaign_seed site =
  let rec go i =
    if i > 1000 then Alcotest.failf "no %s fault in 1000 indices" (Fault.site_to_string site)
    else if (Fault.derive ~campaign_seed i).Fault.site = site then i
    else go (i + 1)
  in
  go 0

(* --- fault derivation ----------------------------------------------------- *)

let test_derive_deterministic () =
  for i = 0 to 31 do
    let a = Fault.derive ~campaign_seed:9L i in
    let b = Fault.derive ~campaign_seed:9L i in
    Alcotest.(check bool) "specs equal" true (a = b);
    Alcotest.(check int) "index recorded" i a.Fault.index;
    Alcotest.(check bool) "trigger in (0,1)" true (a.Fault.trigger > 0. && a.Fault.trigger < 1.);
    Alcotest.(check bool) "flip nonzero" true (a.Fault.flip <> 0L)
  done;
  (* different seeds and indices give different streams *)
  Alcotest.(check bool) "seed matters" true
    (List.init 16 (Fault.derive ~campaign_seed:9L) <> List.init 16 (Fault.derive ~campaign_seed:10L))

let test_site_string_roundtrip () =
  Array.iter
    (fun site ->
      Alcotest.(check bool) "roundtrip" true
        (Fault.site_of_string (Fault.site_to_string site) = Some site))
    Fault.all_sites;
  Alcotest.(check bool) "unknown rejected" true (Fault.site_of_string "nonsense" = None)

(* --- engine classification ------------------------------------------------ *)

let test_run_fault_deterministic () =
  let cfg = Engine.default_config in
  for i = 0 to 5 do
    let a = Engine.run_fault cfg ~campaign_seed:3L i in
    let b = Engine.run_fault cfg ~campaign_seed:3L i in
    List.iter2
      (fun (x : Engine.result) (y : Engine.result) ->
        Alcotest.check classification
          (Printf.sprintf "fault %d under %s" i (Scheme.to_string x.Engine.scheme))
          x.Engine.classification y.Engine.classification)
      a b
  done

(* The §5.2/§6.1 headline: the same reload-window substitution is silent
   under the unmasked variant (the adversary collision-matches harvested
   aret values at the observable pac_bits = 4) but is caught — or lands
   benign — under the masked variant, where the spilled tokens are
   opaque and the pick succeeds only with probability 2^-b. *)
let test_window_masked_vs_unmasked () =
  let seed = 42L in
  let idx = first_site_index ~campaign_seed:seed Fault.Reload_window in
  let cfg = { Engine.default_config with Engine.schemes = [ Scheme.pacstack_nomask; Scheme.pacstack ] } in
  match Engine.run_fault cfg ~campaign_seed:seed idx with
  | [ nomask; masked ] ->
    Alcotest.check classification "unmasked pacstack: silent corruption" Engine.Silent
      nomask.Engine.classification;
    Alcotest.(check bool) "masked pacstack: detected or benign" true
      (match masked.Engine.classification with
      | Engine.Detected _ | Engine.Benign -> true
      | Engine.Silent -> false)
  | _ -> Alcotest.fail "expected two results"

(* The same window fault is silent under every non-authenticating
   scheme: the harvested control words are valid for reuse. *)
let test_window_silent_without_authentication () =
  let seed = 42L in
  let idx = first_site_index ~campaign_seed:seed Fault.Reload_window in
  let cfg =
    {
      Engine.default_config with
      Engine.schemes = [ Scheme.Unprotected; Scheme.Branch_protection; Scheme.Shadow_stack ];
    }
  in
  List.iter
    (fun (r : Engine.result) ->
      Alcotest.check classification
        (Scheme.to_string r.Engine.scheme ^ ": window reuse is silent")
        Engine.Silent r.Engine.classification)
    (Engine.run_fault cfg ~campaign_seed:seed idx)

(* Signal-frame forgery: killed by the Appendix B chain under PACStack,
   never detected as such under an unprotected kernel. *)
let test_signal_frame_chained_vs_unprotected () =
  let seed = 42L in
  let idx = first_site_index ~campaign_seed:seed Fault.Signal_frame in
  let cfg =
    { Engine.default_config with Engine.schemes = [ Scheme.Unprotected; Scheme.pacstack ] }
  in
  match Engine.run_fault cfg ~campaign_seed:seed idx with
  | [ unprotected; pacstack ] ->
    Alcotest.(check bool) "unprotected kernel never reports sigreturn-kill" true
      (match unprotected.Engine.classification with
      | Engine.Detected { cause; _ } -> cause <> "sigreturn-kill"
      | Engine.Benign | Engine.Silent -> true);
    Alcotest.(check bool) "pacstack kernel kills the forged frame" true
      (match pacstack.Engine.classification with
      | Engine.Detected { cause; _ } -> cause = "sigreturn-kill"
      | Engine.Benign | Engine.Silent -> false)
  | _ -> Alcotest.fail "expected two results"

(* --- trap paths of corrupted returns -------------------------------------- *)

(* Run the victim with one corruption applied at the first window-hook
   firing, tracing every instruction so the faulting one is known
   exactly. Returns (outcome, last traced instruction). *)
let run_corrupted ~scheme ~corrupt =
  let compiled = Compile.compile ~scheme (Victim.program ()) in
  let m = Machine.load ~cfg:(Config.make ~pac_bits:4 ()) compiled in
  let fired = ref false in
  Machine.attach_hook m Victim.window_hook (fun hm ->
      if not !fired then begin
        fired := true;
        corrupt hm
      end);
  let last = ref None in
  Machine.set_tracer m (Some (fun _ instr -> last := Some instr));
  let outcome = Machine.run m in
  (outcome, !last)

let xor_mem m addr pattern =
  let mem = Machine.memory m in
  Memory.store64 mem addr (Int64.logxor (Memory.load64 mem addr) pattern)

let is_ret = function Some (Instr.Ret _) -> true | _ -> false

(* PACStack: corrupting the spilled chain value changes the [autia]
   modifier in the epilogue that reloads it; the authenticated LR comes
   out non-canonical and the subsequent [ret] raises a translation
   fault on the instruction fetch.  (The other trap variants are not
   reachable from a corrupted aret: the error bit makes the pointer
   non-canonical before any mapping or permission question arises, and
   returns are not subject to the forward-edge CFI check, so
   [Cfi_violation] and [Undefined] cannot fire on this path.) *)
let test_pacstack_chain_corruption_trap () =
  List.iter
    (fun scheme ->
      let outcome, last =
        run_corrupted ~scheme ~corrupt:(fun hm ->
            xor_mem hm (Int64.sub (Machine.get hm Reg.fp) 16L) 4L)
      in
      (match outcome with
      | Machine.Faulted (Trap.Translation (addr, Trap.Execute)) ->
        Alcotest.(check bool) "faulting address is non-canonical" true
          (Int64.logand addr Int64.min_int <> 0L || Int64.shift_right_logical addr 55 <> 0L)
      | other ->
        Alcotest.failf "%s: expected translation fault, got %s" (Scheme.to_string scheme)
          (match other with
          | Machine.Faulted t -> Trap.to_string t
          | Machine.Halted c -> Printf.sprintf "exit %d" c
          | Machine.Out_of_fuel -> "out of fuel"));
      Alcotest.(check bool) "trap raised at the ret" true (is_ret last))
    [ Scheme.pacstack; Scheme.pacstack_nomask ]

(* Shadow stack: the shadow value is authoritative on return, so a
   corrupted top entry redirects the [ret].  A flip into unmapped space
   raises [Unmapped]; pointing the entry at a mapped rw data object
   raises [Permission] (execute of non-executable memory). *)
let test_shadow_corruption_traps () =
  let top hm = Int64.sub (Machine.get hm Reg.shadow) 8L in
  let outcome, last =
    run_corrupted ~scheme:Scheme.Shadow_stack ~corrupt:(fun hm ->
        xor_mem hm (top hm) (Int64.shift_left 1L 30))
  in
  (match outcome with
  | Machine.Faulted (Trap.Unmapped (_, Trap.Execute)) -> ()
  | other ->
    Alcotest.failf "expected unmapped fault, got %s"
      (match other with
      | Machine.Faulted t -> Trap.to_string t
      | Machine.Halted c -> Printf.sprintf "exit %d" c
      | Machine.Out_of_fuel -> "out of fuel"));
  Alcotest.(check bool) "unmapped trap at the ret" true (is_ret last);
  let outcome, last =
    run_corrupted ~scheme:Scheme.Shadow_stack ~corrupt:(fun hm ->
        let guard = Option.get (Image.symbol (Machine.image hm) Machine.canary_symbol) in
        Memory.store64 (Machine.memory hm) (top hm) guard)
  in
  (match outcome with
  | Machine.Faulted (Trap.Permission (_, Trap.Execute)) -> ()
  | other ->
    Alcotest.failf "expected permission fault, got %s"
      (match other with
      | Machine.Faulted t -> Trap.to_string t
      | Machine.Halted c -> Printf.sprintf "exit %d" c
      | Machine.Out_of_fuel -> "out of fuel"));
  Alcotest.(check bool) "permission trap at the ret" true (is_ret last)

(* --- campaign wiring ------------------------------------------------------ *)

let stats_equal (a : Engine.stats) (b : Engine.stats) = a = b

let test_campaign_worker_independence () =
  let plan () = Plans.inject_plan ~faults:10 ~shards:4 ~seed:5L () in
  let t1 = Plans.inject_totals (Campaign.run ~workers:1 (plan ())) in
  let t4 = Plans.inject_totals (Campaign.run ~workers:4 (plan ())) in
  Alcotest.(check bool) "1 worker = 4 workers" true (stats_equal t1 t4);
  Alcotest.(check int) "all faults ran" 10 t1.Engine.faults

let test_campaign_resume_identical () =
  let path = temp_manifest () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let plan () = Plans.inject_plan ~faults:8 ~shards:4 ~seed:5L () in
      let run () =
        Plans.inject_totals
          (Campaign.run ~workers:1 ~checkpoint:(path, Plans.inject_codec) (plan ()))
      in
      let first = run () in
      let resumed_outcome =
        Campaign.run ~workers:1 ~checkpoint:(path, Plans.inject_codec) (plan ())
      in
      Alcotest.(check int) "all shards restored" 4 resumed_outcome.Campaign.resumed;
      Alcotest.(check bool) "resume = uninterrupted" true
        (stats_equal first (Plans.inject_totals resumed_outcome)))

(* A planted always-silent fault (the test-only tamper hook corrupts
   observable output without touching any control word) must surface as
   silent corruption under every scheme — this is what the CLI gate and
   the CI campaign would catch with exit 1. *)
let test_planted_tamper_is_caught () =
  let tamper m = Machine.push_output m 999L in
  let faults = 4 in
  let outcome =
    Campaign.run ~workers:1
      (Plans.inject_plan ~schemes:[ Scheme.pacstack ] ~tamper ~faults ~shards:2 ~seed:5L ())
  in
  let totals = Plans.inject_totals outcome in
  let cell = List.assoc (Scheme.to_string Scheme.pacstack) totals.Engine.cells in
  Alcotest.(check int) "every planted fault is silent" faults cell.Engine.silent;
  Alcotest.(check int) "gate finds reproducers" faults (List.length totals.Engine.silents)

(* Regression (satellite fix): Signal_frame / Reload_window leaking into
   the generic injector used to die on [assert false] — an anonymous
   Assert_failure at engine.ml with no hint of which fault was misrouted.
   The typed error names the fault index and site, and because it is an
   ordinary exception the pool classifies it as a Crashed outcome
   (quarantining the shard) instead of killing the whole campaign. *)
let test_misrouted_site_names_culprit () =
  let contains msg needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1)) in
    go 0
  in
  let check site label =
    let msg = Printexc.to_string (Engine.Misrouted_site { index = 42; site }) in
    Alcotest.(check bool) ("names the fault: " ^ msg) true (contains msg "fault 42");
    Alcotest.(check bool) ("names the site: " ^ msg) true (contains msg label)
  in
  check Fault.Signal_frame "signal-frame";
  check Fault.Reload_window "reload-window"

(* --- statistics ----------------------------------------------------------- *)

let test_stats_json_roundtrip () =
  let stats = Engine.run_range Engine.default_config ~campaign_seed:7L ~first:0 ~count:6 in
  match Engine.stats_of_json (Engine.stats_to_json stats) with
  | None -> Alcotest.fail "stats did not parse back"
  | Some parsed -> Alcotest.(check bool) "roundtrip" true (stats_equal stats parsed)

let test_stats_merge_order_independent () =
  let cfg = Engine.default_config in
  let a = Engine.run_range cfg ~campaign_seed:7L ~first:0 ~count:3 in
  let b = Engine.run_range cfg ~campaign_seed:7L ~first:3 ~count:3 in
  let c = Engine.run_range cfg ~campaign_seed:7L ~first:6 ~count:3 in
  let left = Engine.merge (Engine.merge a b) c in
  let right = Engine.merge a (Engine.merge b c) in
  let swapped = Engine.merge (Engine.merge c b) a in
  Alcotest.(check bool) "associative" true (stats_equal left right);
  Alcotest.(check bool) "commutative" true (stats_equal left swapped);
  Alcotest.(check int) "all faults counted" 9 left.Engine.faults

let () =
  Alcotest.run "inject"
    [
      ( "fault",
        [
          Alcotest.test_case "derivation deterministic" `Quick test_derive_deterministic;
          Alcotest.test_case "site strings roundtrip" `Quick test_site_string_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "run_fault deterministic" `Quick test_run_fault_deterministic;
          Alcotest.test_case "window: masked vs unmasked" `Quick test_window_masked_vs_unmasked;
          Alcotest.test_case "window: silent without authentication" `Quick
            test_window_silent_without_authentication;
          Alcotest.test_case "signal frame: chained vs unprotected" `Quick
            test_signal_frame_chained_vs_unprotected;
        ] );
      ( "traps",
        [
          Alcotest.test_case "pacstack chain corruption" `Quick
            test_pacstack_chain_corruption_trap;
          Alcotest.test_case "shadow slot corruption" `Quick test_shadow_corruption_traps;
          Alcotest.test_case "misrouted site names the culprit" `Quick
            test_misrouted_site_names_culprit;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "worker independence" `Quick test_campaign_worker_independence;
          Alcotest.test_case "resume identical" `Quick test_campaign_resume_identical;
          Alcotest.test_case "planted tamper caught" `Quick test_planted_tamper_is_caught;
        ] );
      ( "stats",
        [
          Alcotest.test_case "json roundtrip" `Quick test_stats_json_roundtrip;
          Alcotest.test_case "merge order independent" `Quick test_stats_merge_order_independent;
        ] );
    ]
