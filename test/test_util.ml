(* Unit and property tests for Pacstack_util: 64-bit word operations, the
   deterministic RNG and the statistics helpers. *)

module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Stats = Pacstack_util.Stats

let check_w64 = Alcotest.testable Word64.pp Word64.equal
let qtest name count gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let full64 = QCheck2.Gen.(map2 (fun a b -> Int64.logxor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 31)) int int)

(* --- Word64 ------------------------------------------------------------ *)

let test_mask () =
  Alcotest.check check_w64 "mask 0" 0L (Word64.mask 0);
  Alcotest.check check_w64 "mask 1" 1L (Word64.mask 1);
  Alcotest.check check_w64 "mask 16" 0xffffL (Word64.mask 16);
  Alcotest.check check_w64 "mask 64" (-1L) (Word64.mask 64);
  Alcotest.check_raises "mask 65" (Invalid_argument "Word64.mask") (fun () ->
      ignore (Word64.mask 65))

let test_bits () =
  Alcotest.(check bool) "bit 0 of 1" true (Word64.bit 1L 0);
  Alcotest.(check bool) "bit 63 of min_int" true (Word64.bit Int64.min_int 63);
  Alcotest.check check_w64 "set bit" 4L (Word64.set_bit 0L 2 true);
  Alcotest.check check_w64 "clear bit" 0L (Word64.set_bit 4L 2 false);
  Alcotest.check check_w64 "flip twice" 17L (Word64.flip_bit (Word64.flip_bit 17L 9) 9)

let test_extract_insert () =
  Alcotest.check check_w64 "extract" 0xbeL (Word64.extract 0xdeadbeefL ~lo:8 ~width:8);
  Alcotest.check check_w64 "insert" 0xde00beefL
    (Word64.insert 0xdeadbeefL ~lo:16 ~width:8 0L);
  Alcotest.check check_w64 "extract width 0" 0L (Word64.extract (-1L) ~lo:10 ~width:0)

let prop_insert_extract =
  qtest "insert/extract roundtrip" 500
    QCheck2.Gen.(tup3 full64 (int_range 0 56) full64)
    (fun (w, lo, v) ->
      let width = min 8 (64 - lo) in
      let w' = Word64.insert w ~lo ~width v in
      Word64.equal (Word64.extract w' ~lo ~width) (Int64.logand v (Word64.mask width)))

let prop_rot_inverse =
  qtest "rotl/rotr inverse" 500
    QCheck2.Gen.(tup2 full64 (int_range 0 63))
    (fun (w, n) -> Word64.equal (Word64.rotr (Word64.rotl w n) n) w)

let prop_rot_popcount =
  qtest "rotation preserves popcount" 500
    QCheck2.Gen.(tup2 full64 (int_range 0 63))
    (fun (w, n) -> Word64.popcount (Word64.rotl w n) = Word64.popcount w)

let test_popcount () =
  Alcotest.(check int) "popcount 0" 0 (Word64.popcount 0L);
  Alcotest.(check int) "popcount -1" 64 (Word64.popcount (-1L));
  Alcotest.(check int) "popcount 0xf0" 4 (Word64.popcount 0xf0L);
  Alcotest.(check int) "hamming" 2 (Word64.hamming 0b1100L 0b1010L);
  Alcotest.(check int) "parity odd" 1 (Word64.parity 0b111L)

let prop_nibbles =
  qtest "nibble pack/unpack roundtrip" 300 full64 (fun w ->
      Word64.equal (Word64.of_nibbles (Word64.to_nibbles w)) w)

let test_nibble_order () =
  (* cell 0 is the most significant nibble, per the QARMA convention *)
  Alcotest.(check int) "cell 0" 0xd (Word64.nibble 0xd000000000000000L 0);
  Alcotest.(check int) "cell 15" 0x7 (Word64.nibble 0x7L 15);
  Alcotest.check check_w64 "set cell 0" 0xa000000000000001L
    (Word64.set_nibble 1L 0 0xa)

let test_bytes () =
  Alcotest.(check int) "byte 0" 0xef (Word64.byte 0xdeadbeefL 0);
  Alcotest.(check int) "byte 3" 0xde (Word64.byte 0xdeadbeefL 3);
  Alcotest.check check_w64 "set byte" 0xde00beefL (Word64.set_byte 0xdeadbeefL 2 0)

let prop_hex =
  qtest "hex roundtrip" 300 full64 (fun w -> Word64.equal (Word64.of_hex (Word64.to_hex w)) w)

let test_hex_parse () =
  Alcotest.check check_w64 "0x prefix" 255L (Word64.of_hex "0xff");
  Alcotest.check check_w64 "upper" 0xABCL (Word64.of_hex "ABC");
  Alcotest.check_raises "empty" (Invalid_argument "Word64.of_hex") (fun () ->
      ignore (Word64.of_hex ""));
  Alcotest.check_raises "bad digit" (Invalid_argument "Word64.of_hex") (fun () ->
      ignore (Word64.of_hex "xyz"))

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 10 do
    Alcotest.check check_w64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_split () =
  let a = Rng.create 42L in
  let c = Rng.split a in
  Alcotest.(check bool) "split differs from parent stream" true
    (not (Word64.equal (Rng.next64 c) (Rng.next64 a)))

let test_rng_split_n () =
  (* determinism: equal seeds derive equal stream families *)
  let a = Rng.split_n (Rng.create 99L) 4 and b = Rng.split_n (Rng.create 99L) 4 in
  Array.iter2
    (fun x y -> Alcotest.check check_w64 "same derived stream" (Rng.next64 x) (Rng.next64 y))
    a b;
  (* split_n is split iterated: the sharder's indexing contract *)
  let parent = Rng.create 99L in
  let family = Rng.split_n (Rng.create 99L) 4 in
  for i = 0 to 3 do
    Alcotest.check check_w64
      (Printf.sprintf "element %d equals iterated split" i)
      (Rng.next64 (Rng.split parent))
      (Rng.next64 family.(i))
  done;
  Alcotest.(check int) "split_n 0" 0 (Array.length (Rng.split_n (Rng.create 1L) 0));
  Alcotest.check_raises "split_n negative" (Invalid_argument "Rng.split_n") (fun () ->
      ignore (Rng.split_n (Rng.create 1L) (-1)))

let test_rng_split_n_disjoint () =
  (* campaign shards must not share randomness: the 10k-draw prefixes of
     8 sibling streams are pairwise disjoint *)
  let streams = Rng.split_n (Rng.create 0xdecafL) 8 in
  let prefix t =
    let tbl = Hashtbl.create 20_000 in
    for _ = 1 to 10_000 do
      Hashtbl.replace tbl (Rng.next64 t) ()
    done;
    tbl
  in
  let prefixes = Array.map prefix streams in
  Array.iteri
    (fun i pi ->
      Array.iteri
        (fun j pj ->
          if i < j then
            Hashtbl.iter
              (fun w () ->
                if Hashtbl.mem pj w then
                  Alcotest.failf "streams %d and %d share value %Lx in their 10k prefix" i j w)
              pi)
        prefixes)
    prefixes

let test_rng_copy () =
  let a = Rng.create 7L in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  Alcotest.check check_w64 "copy continues identically" (Rng.next64 a) (Rng.next64 b)

let prop_rng_int_bounds =
  qtest "int stays in bounds" 500
    QCheck2.Gen.(tup2 full64 (int_range 1 1000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let v = Rng.int r n in
      v >= 0 && v < n)

let prop_rng_bits_width =
  qtest "bits fit the width" 500
    QCheck2.Gen.(tup2 full64 (int_range 0 63))
    (fun (seed, n) ->
      let r = Rng.create seed in
      Word64.equal (Int64.logand (Rng.bits r n) (Int64.lognot (Word64.mask n))) 0L)

let test_rng_float_range () =
  let r = Rng.create 3L in
  for _ = 1 to 100 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 9L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_uniformity () =
  (* chi-square-flavoured sanity: 8 buckets over 8000 draws *)
  let r = Rng.create 123L in
  let buckets = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Rng.int r 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket near 1000" true (c > 850 && c < 1150))
    buckets

(* --- Stats --------------------------------------------------------------- *)

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean") (fun () ->
      ignore (Stats.mean []))

let test_geomean () =
  Alcotest.check feq "geometric mean" 4.0 (Stats.geometric_mean [ 2.0; 8.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive value") (fun () ->
      ignore (Stats.geometric_mean [ 1.0; 0.0 ]))

let test_stddev () =
  Alcotest.check feq "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.check (Alcotest.float 1e-6) "known" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_percentiles () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.check feq "median" 2.5 (Stats.median xs);
  Alcotest.check feq "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.check feq "p100" 4.0 (Stats.percentile xs 100.0)

(* Regression: percentile used to accept any [p] — p=150 indexed past the
   end of the sorted array and NaN propagated silently through reports. *)
let test_percentile_validates_rank () =
  let xs = [ 1.0; 2.0; 3.0 ] in
  Alcotest.check feq "singleton ignores p" 42.0 (Stats.percentile [ 42.0 ] 99.0);
  Alcotest.check_raises "p > 100"
    (Invalid_argument "Stats.percentile: p = 150 not in [0, 100]") (fun () ->
      ignore (Stats.percentile xs 150.0));
  Alcotest.check_raises "p < 0"
    (Invalid_argument "Stats.percentile: p = -1 not in [0, 100]") (fun () ->
      ignore (Stats.percentile xs (-1.0)));
  Alcotest.check_raises "NaN rank"
    (Invalid_argument "Stats.percentile: p = nan not in [0, 100]") (fun () ->
      ignore (Stats.percentile xs Float.nan));
  Alcotest.check_raises "NaN element"
    (Invalid_argument "Stats.percentile: NaN element") (fun () ->
      ignore (Stats.percentile [ 1.0; Float.nan ] 50.0))

let test_percentiles_many_ranks () =
  (* one sort, many ranks must agree exactly with the one-rank function *)
  let rng = Rng.create 91L in
  let xs = List.init 257 (fun _ -> Rng.float rng *. 1000.0) in
  let ps = [ 0.0; 12.5; 50.0; 90.0; 95.0; 99.0; 99.9; 100.0 ] in
  List.iter2
    (fun p got ->
      Alcotest.check (Alcotest.float 1e-12)
        (Printf.sprintf "p%g matches Stats.percentile" p)
        (Stats.percentile xs p) got)
    ps (Stats.percentiles xs ps);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentiles") (fun () ->
      ignore (Stats.percentiles [] [ 50.0 ]));
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Stats.percentiles: p = 101 not in [0, 100]") (fun () ->
      ignore (Stats.percentiles xs [ 50.0; 101.0 ]))

let test_weighted_percentile () =
  (* histogram percentiles must land within one bucket width of the exact
     answer on the raw samples — the sufficient-statistics contract *)
  let rng = Rng.create 17L in
  let xs = List.init 5000 (fun _ -> Rng.float rng ** 3.0 *. 100.0) in
  let buckets = 50 in
  let width = 100.0 /. float_of_int buckets in
  let bounds = Array.init (buckets + 1) (fun i -> float_of_int i *. width) in
  let counts = Array.make buckets 0 in
  List.iter
    (fun x ->
      let i = min (buckets - 1) (int_of_float (x /. width)) in
      counts.(i) <- counts.(i) + 1)
    xs;
  List.iter
    (fun p ->
      let exact = Stats.percentile xs p in
      let approx = Stats.weighted_percentile ~bounds ~counts p in
      Alcotest.(check bool)
        (Printf.sprintf "p%g: |%.3f - %.3f| <= bucket width" p approx exact)
        true
        (Float.abs (approx -. exact) <= width +. 1e-9))
    [ 1.0; 50.0; 90.0; 95.0; 99.0; 99.9 ];
  (* all mass in one bucket: every rank interpolates inside that bucket *)
  let one = Stats.weighted_percentile ~bounds:[| 2.0; 4.0 |] ~counts:[| 8 |] 50.0 in
  Alcotest.(check bool) "single bucket interpolates" true (one >= 2.0 && one <= 4.0);
  Alcotest.check_raises "empty histogram"
    (Invalid_argument "Stats.weighted_percentile: empty histogram") (fun () ->
      ignore (Stats.weighted_percentile ~bounds:[| 0.0; 1.0 |] ~counts:[| 0 |] 50.0));
  Alcotest.check_raises "mismatched bounds"
    (Invalid_argument "Stats.weighted_percentile: bounds must have one more entry than counts")
    (fun () -> ignore (Stats.weighted_percentile ~bounds:[| 0.0 |] ~counts:[| 1 |] 50.0))

let test_binomial_ci () =
  let lo, hi = Stats.binomial_ci ~successes:50 ~trials:100 in
  Alcotest.(check bool) "covers 0.5" true (lo < 0.5 && hi > 0.5);
  Alcotest.(check bool) "non-degenerate" true (hi -. lo > 0.0 && hi -. lo < 0.25);
  let lo0, _ = Stats.binomial_ci ~successes:0 ~trials:10 in
  Alcotest.check feq "zero successes lower bound" 0.0 lo0

let test_wilson () =
  (* no data: the interval is the whole unit line, not an exception —
     mega-campaign tables hold cells with zero trials *)
  let lo, hi = Stats.wilson ~successes:0 ~trials:0 in
  Alcotest.check feq "n=0 lower" 0.0 lo;
  Alcotest.check feq "n=0 upper" 1.0 hi;
  (* k=0: lower bound exactly 0, upper bound the rule-of-three-ish z²/(n+z²) *)
  let lo, hi = Stats.wilson ~successes:0 ~trials:20 in
  Alcotest.check feq "k=0 lower" 0.0 lo;
  Alcotest.(check bool) "k=0 upper in (0, 1)" true (hi > 0.0 && hi < 0.25);
  (* k=n is the mirror image of k=0 *)
  let lo', hi' = Stats.wilson ~successes:20 ~trials:20 in
  Alcotest.check feq "k=n upper" 1.0 hi';
  Alcotest.check feq "k=n mirrors k=0" (1.0 -. hi) lo';
  (* published value: k=1, n=10 at 95% is about [0.018, 0.404] *)
  let lo, hi = Stats.wilson ~successes:1 ~trials:10 in
  Alcotest.check (Alcotest.float 1e-3) "small-n lower" 0.018 lo;
  Alcotest.check (Alcotest.float 1e-3) "small-n upper" 0.404 hi;
  Alcotest.check_raises "negative trials"
    (Invalid_argument "Stats.wilson: trials < 0") (fun () ->
      ignore (Stats.wilson ~successes:0 ~trials:(-1)));
  Alcotest.check_raises "successes out of range"
    (Invalid_argument "Stats.wilson: successes 11 not in [0, 10]") (fun () ->
      ignore (Stats.wilson ~successes:11 ~trials:10))

let prop_wilson_contains_estimate =
  qtest "wilson interval contains the point estimate" 500
    QCheck2.Gen.(
      bind (int_range 1 10_000) (fun n ->
          map (fun k -> (k, n)) (int_range 0 n)))
    (fun (k, n) ->
      let lo, hi = Stats.wilson ~successes:k ~trials:n in
      let p = float_of_int k /. float_of_int n in
      0.0 <= lo && lo <= p && p <= hi && hi <= 1.0)

let test_overhead () =
  Alcotest.check feq "10%" 10.0 (Stats.overhead_pct ~baseline:100.0 ~measured:110.0);
  Alcotest.check feq "negative" (-10.0) (Stats.overhead_pct ~baseline:100.0 ~measured:90.0)

let test_birthday () =
  Alcotest.check (Alcotest.float 0.5) "paper's 321 tokens at b=16" 320.8
    (Stats.birthday_expected_tokens ~bits:16);
  Alcotest.(check bool) "certainty beyond space" true
    (Stats.birthday_collision_probability ~bits:4 ~drawn:17 = 1.0);
  let p = Stats.birthday_collision_probability ~bits:16 ~drawn:321 in
  Alcotest.(check bool) "~50% at the mean" true (p > 0.4 && p < 0.7)

let test_guesses () =
  (* log(1-p)/log(1-2^-b) *)
  let g = Stats.guesses_for_success ~bits:16 ~p:0.5 in
  Alcotest.(check bool) "about 45k guesses for a coin flip at b=16" true
    (g > 45000.0 && g < 46000.0);
  Alcotest.check feq "geometric mean" 256.0 (Stats.expected_guesses_geometric ~bits:8)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:4 ~lo:0.0 ~hi:4.0 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 3.9; -1.0; 10.0 ];
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h);
  Alcotest.(check (array int)) "buckets (clamping at edges)" [| 2; 2; 0; 2 |]
    (Stats.Histogram.bucket_counts h)

let () =
  Alcotest.run "util"
    [
      ( "word64",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "bit ops" `Quick test_bits;
          Alcotest.test_case "extract/insert" `Quick test_extract_insert;
          prop_insert_extract;
          prop_rot_inverse;
          prop_rot_popcount;
          Alcotest.test_case "popcount family" `Quick test_popcount;
          prop_nibbles;
          Alcotest.test_case "nibble order" `Quick test_nibble_order;
          Alcotest.test_case "bytes" `Quick test_bytes;
          prop_hex;
          Alcotest.test_case "hex parsing" `Quick test_hex_parse;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "split_n" `Quick test_rng_split_n;
          Alcotest.test_case "split_n streams are disjoint" `Quick test_rng_split_n_disjoint;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          prop_rng_int_bounds;
          prop_rng_bits_width;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geometric mean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile rank validation" `Quick test_percentile_validates_rank;
          Alcotest.test_case "percentiles: one sort, many ranks" `Quick
            test_percentiles_many_ranks;
          Alcotest.test_case "weighted percentile over buckets" `Quick
            test_weighted_percentile;
          Alcotest.test_case "binomial CI" `Quick test_binomial_ci;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
          prop_wilson_contains_estimate;
          Alcotest.test_case "overhead" `Quick test_overhead;
          Alcotest.test_case "birthday closed forms" `Quick test_birthday;
          Alcotest.test_case "guess counts" `Quick test_guesses;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
    ]
