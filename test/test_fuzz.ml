(* Tests for the differential fuzzer: the tier-1 200-seed smoke pass
   (every scheme, peephole off and on, against the reference
   interpreter), worker-count determinism of the campaign plan, and the
   planted-miscompilation drill — a deliberate wrong-constant mutation
   applied to the compiled program must be caught by the oracle and
   shrunk to a tiny reproducer.  The mutation lives here, in the test;
   nothing in the library plants bugs. *)

module Ast = Pacstack_minic.Ast
module Scheme = Pacstack_harden.Scheme
module Program = Pacstack_isa.Program
module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Trace = Pacstack_fuzz.Trace
module Interp = Pacstack_fuzz.Interp
module Gen = Pacstack_fuzz.Gen
module Oracle = Pacstack_fuzz.Oracle
module Shrink = Pacstack_fuzz.Shrink
module Driver = Pacstack_fuzz.Driver
module Triage = Pacstack_fuzz.Triage
module Campaign = Pacstack_campaign.Campaign
module Json = Pacstack_campaign.Json
module Plans = Pacstack_report.Plans
module B = Pacstack_minic.Build

let smoke_seed = 1L (* the tier-1 campaign seed; CI fuzzes others *)

(* --- the interpreter on hand-written programs ---------------------------- *)

let test_interp_basics () =
  let prog =
    Ast.program
      [
        Ast.fdef "add" ~params:[ "a"; "b" ] B.[ ret (v "a" + v "b") ];
        Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
          B.[ set "r" (call "add" [ i 2; i 3 ]); print (v "r"); ret (i 0) ];
      ]
  in
  let t = Interp.run prog in
  Alcotest.(check bool) "exit 0" true (t.Trace.outcome = Trace.Exit 0);
  Alcotest.(check (list int64)) "output" [ 5L ] t.Trace.output

let test_interp_matches_machine () =
  (* one fixed program with arrays, recursion and control flow *)
  let prog =
    Ast.program
      ~globals:[ ("g", 8) ]
      [
        Ast.fdef "fib" ~params:[ "n" ]
          B.[ if_ (v "n" <= i 1) [ ret (v "n") ] [];
              ret (call "fib" [ v "n" - i 1 ] + call "fib" [ v "n" - i 2 ]) ];
        Ast.fdef "main" ~locals:[ Ast.Scalar "r" ]
          B.[ set "r" (call "fib" [ i 10 ]);
              store (glob "g") (v "r");
              print (load (glob "g"));
              ret (i 0) ];
      ]
  in
  let expected = Interp.run prog in
  Alcotest.(check (list int64)) "fib 10" [ 55L ] expected.Trace.output;
  List.iter
    (fun scheme ->
      let actual = Oracle.machine_trace Oracle.default_config ~scheme ~optimize:true prog in
      Alcotest.(check bool) (Scheme.to_string scheme) true (Trace.equal expected actual))
    Scheme.all

(* --- generator ------------------------------------------------------------ *)

let test_generator_deterministic () =
  List.iter
    (fun i ->
      let a = Driver.program_of_seed ~campaign_seed:smoke_seed i in
      let b = Driver.program_of_seed ~campaign_seed:smoke_seed i in
      Alcotest.(check bool) (Printf.sprintf "seed %d regenerates" i) true (a = b))
    [ 0; 1; 17; 99 ];
  let a = Driver.program_of_seed ~campaign_seed:smoke_seed 0 in
  let b = Driver.program_of_seed ~campaign_seed:2L 0 in
  Alcotest.(check bool) "different campaign seeds differ" false (a = b)

(* --- the 200-seed tier-1 differential pass -------------------------------- *)

let run_smoke ~workers =
  Plans.fuzz_totals (Campaign.run ~workers (Plans.fuzz_plan ~seeds:200 ~seed:smoke_seed ()))

(* computed once, shared by the pass/determinism tests below (alcotest
   runs cases sequentially in-process; on a 1-core host the 4-domain
   leg is contention-bound, so every saved pass counts) *)
let smoke_w1 = lazy (run_smoke ~workers:1)

let test_smoke_200_seeds () =
  let totals = Lazy.force smoke_w1 in
  Alcotest.(check int) "200 programs" 200 totals.Driver.programs;
  Alcotest.(check int) "no crashes" 0 totals.Driver.crashes;
  Alcotest.(check int) "no skips" 0 totals.Driver.skipped;
  (match totals.Driver.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d diverges under %s%s at %s: expected %s, got %s"
      f.Driver.seed f.Driver.scheme
      (if f.Driver.optimize then "+peephole" else "")
      f.Driver.site f.Driver.expected f.Driver.actual);
  (* every scheme x {peephole off, on} ran for every seed *)
  Alcotest.(check int) "12 machine runs per seed"
    (200 * 2 * List.length Scheme.all)
    totals.Driver.runs

let test_smoke_workers_identical () =
  let t1 = Lazy.force smoke_w1 in
  let t4 = run_smoke ~workers:4 in
  Alcotest.(check bool) "merged stats identical" true (t1 = t4);
  let render t = Json.to_string (Json.Obj (Plans.fuzz_stats_json t)) in
  Alcotest.(check string) "rendered report identical" (render t1) (render t4)

(* --- planted miscompilation ------------------------------------------------ *)

(* Bump the constant of the first [mov xN, #imm] into a compiler temp
   (x9..x14) in the compiled [main] — a one-instruction wrong-constant
   miscompilation. *)
let plant_wrong_constant (p : Program.t) =
  let is_temp r = List.exists (fun n -> Reg.equal r (Reg.x n)) [ 9; 10; 11; 12; 13; 14 ] in
  let bumped = ref false in
  Program.map_funcs
    (fun f ->
      if not (String.equal f.Program.name "main") then f
      else
        {
          f with
          Program.body =
            List.map
              (function
                | Program.Ins (Instr.Mov (r, Instr.Imm v)) when (not !bumped) && is_temp r ->
                  bumped := true;
                  Program.Ins (Instr.Mov (r, Instr.Imm (Int64.add v 1L)))
                | item -> item)
              f.Program.body;
        })
    p

let planted_cfg =
  {
    Oracle.default_config with
    Oracle.schemes = [ Scheme.unprotected ];
    optimize = [ false ];
    transform = Some plant_wrong_constant;
  }

let test_planted_bug_caught_and_shrunk () =
  (* scan seeds until the mutation is observable (some programs never
     consume the poisoned temp) *)
  let rec hunt i =
    if i >= 50 then Alcotest.fail "planted miscompilation never observed in 50 seeds"
    else
      let prog = Driver.program_of_seed ~campaign_seed:smoke_seed i in
      match Oracle.check planted_cfg prog with
      | Oracle.Disagree ds -> (i, prog, ds)
      | _ -> hunt (i + 1)
  in
  let seed, prog, ds = hunt 0 in
  Alcotest.(check bool) "at least one divergence" true (ds <> []);
  (* the clean pipeline agrees on the very same program *)
  (match Oracle.check { planted_cfg with Oracle.transform = None } prog with
  | Oracle.Agree _ -> ()
  | _ -> Alcotest.fail "clean pipeline should agree");
  let diverges p =
    match Oracle.check planted_cfg p with Oracle.Disagree _ -> true | _ -> false
  in
  let small = Shrink.shrink ~keep:diverges prog in
  let size = Ast.program_size small in
  Alcotest.(check bool) "shrink kept the divergence" true (diverges small);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d shrunk from %d to %d statements (<= 10)" seed
       (Ast.program_size prog) size)
    true (size <= 10);
  (* triage buckets the divergences coherently *)
  let entries =
    List.map (fun d -> Triage.of_divergence ~seed d) ds
  in
  match Triage.buckets entries with
  | [] -> Alcotest.fail "no triage bucket"
  | b :: _ -> Alcotest.(check int) "bucket counts all entries" (List.length entries) b.Triage.count

(* --- shrinker sanity -------------------------------------------------------- *)

let test_shrink_fixpoint_is_minimal () =
  (* shrinking with an always-true predicate must reach a program the
     reducer cannot shrink further, without looping forever *)
  let prog = Driver.program_of_seed ~campaign_seed:smoke_seed 5 in
  let small = Shrink.shrink ~keep:(fun _ -> true) prog in
  Alcotest.(check bool) "shrunk below original" true
    (Ast.program_size small <= Ast.program_size prog);
  Alcotest.(check bool) "no reduction left" true (Shrink.candidates small = [])

let () =
  Alcotest.run "fuzz"
    [
      ( "interp",
        [
          Alcotest.test_case "basics" `Quick test_interp_basics;
          Alcotest.test_case "matches machine" `Quick test_interp_matches_machine;
        ] );
      ("gen", [ Alcotest.test_case "deterministic" `Quick test_generator_deterministic ]);
      ( "differential",
        [
          Alcotest.test_case "200-seed smoke" `Quick test_smoke_200_seeds;
          Alcotest.test_case "workers-identical" `Quick test_smoke_workers_identical;
        ] );
      ( "planted-bug",
        [ Alcotest.test_case "caught and shrunk" `Quick test_planted_bug_caught_and_shrunk ] );
      ("shrink", [ Alcotest.test_case "fixpoint" `Quick test_shrink_fixpoint_is_minimal ]);
    ]
