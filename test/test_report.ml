(* Smoke tests for the report layer: regenerate the stochastic
   tables/sections at tiny trial scales (the numbers are noisy at these
   scales; only the machinery and the shape of the output are under
   test), and golden-check the CSV export headers and row shape. *)

module Report = Pacstack_report.Report
module Export = Pacstack_report.Export

let render section =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  section fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  scan 0

let check_contains out needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "output mentions %S" needle) true
        (contains out needle))
    needles

let test_table1_smoke () =
  let out = render (Report.table1 ~seed:5L ~scale:0.001) in
  check_contains out
    [ "Table 1"; "violation"; "masking"; "paper(theory)"; "measured" ];
  (* six data rows: one per Table 1 cell *)
  Alcotest.(check int) "6 cells printed"
    (List.length Pacstack_report.Plans.table1_cells)
    (List.length
       (List.filter
          (fun line -> contains line "e-" || contains line "e+")
          (String.split_on_char '\n' out)))

let test_table1_smoke_workers () =
  (* the tiny-scale rerun is identical on a 4-domain pool *)
  Alcotest.(check string) "workers-independent"
    (render (Report.table1 ~seed:5L ~scale:0.001))
    (render (Report.table1 ~seed:5L ~scale:0.001 ~workers:4))

let test_birthday_smoke () =
  let out = render (Report.birthday ~seed:5L ~scale:0.01) in
  check_contains out
    [
      "tokens harvested until PAC collision";
      "mask distinguisher advantage";
      "Theorem 1";
    ]

let test_bruteforce_smoke () =
  let out = render (Report.bruteforce ~seed:5L ~scale:0.02) in
  check_contains out [ "Brute-force guessing"; "strategy"; "measured"; "expected" ]

(* --- CSV export: golden headers and row shape ------------------------------ *)

let with_temp_dir f =
  (* relative to the test's working directory, under dune's sandbox *)
  let dir = "export_test_csv" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_export_table1_golden () =
  with_temp_dir (fun dir ->
      let path = Export.table1 ~seed:5L ~scale:0.001 ~dir () in
      Alcotest.(check string) "file name" "table1.csv" (Filename.basename path);
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      match lines with
      | [] -> Alcotest.fail "empty csv"
      | header :: rows ->
        Alcotest.(check string) "golden header" "violation,masking,bits,theory,measured"
          header;
        Alcotest.(check int) "one row per Table 1 cell" 6 (List.length rows);
        List.iter
          (fun row ->
            Alcotest.(check int) "5 fields" 5
              (List.length (String.split_on_char ',' row)))
          rows)

let () =
  Alcotest.run "report"
    [
      ( "sections",
        [
          Alcotest.test_case "table1 tiny-scale" `Quick test_table1_smoke;
          Alcotest.test_case "table1 worker-independent" `Quick test_table1_smoke_workers;
          Alcotest.test_case "birthday tiny-scale" `Quick test_birthday_smoke;
          Alcotest.test_case "bruteforce tiny-scale" `Quick test_bruteforce_smoke;
        ] );
      ("export", [ Alcotest.test_case "table1 csv golden" `Quick test_export_table1_golden ]);
    ]
