(* Tests for the campaign engine: the domain pool, the JSON codec, the
   checkpoint manifest, and the determinism contract — a parallel run of
   a plan is identical to a sequential run, and an interrupted-and-resumed
   run is identical to an uninterrupted one. *)

module Rng = Pacstack_util.Rng
module Json = Pacstack_campaign.Json
module Plan = Pacstack_campaign.Plan
module Shard = Pacstack_campaign.Shard
module Pool = Pacstack_campaign.Pool
module Progress = Pacstack_campaign.Progress
module Checkpoint = Pacstack_campaign.Checkpoint
module Campaign = Pacstack_campaign.Campaign
module Games = Pacstack_acs.Games
module Plans = Pacstack_report.Plans

(* --- Pool --------------------------------------------------------------- *)

let test_pool_matches_sequential () =
  let f i = (i * i) + 3 in
  let expected = Array.init 23 f in
  Alcotest.(check (array int)) "1 worker" expected (Pool.run ~workers:1 ~tasks:23 f);
  Alcotest.(check (array int)) "4 workers" expected (Pool.run ~workers:4 ~tasks:23 f);
  Alcotest.(check (array int)) "more workers than tasks" expected
    (Pool.run ~workers:64 ~tasks:23 f);
  Alcotest.(check (array int)) "no tasks" [||] (Pool.run ~workers:4 ~tasks:0 f)

let test_pool_propagates_exception () =
  (* the satellite fix: the re-raised failure carries the task index and
     captured backtrace instead of arriving bare *)
  match Pool.run ~workers:4 ~tasks:8 (fun i -> if i = 3 then failwith "task 3" else i) with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Pool.Task_failed { task; exn; backtrace = _ } ->
    Alcotest.(check int) "failing task index attached" 3 task;
    Alcotest.(check string) "original exception preserved" "Failure(\"task 3\")"
      (Printexc.to_string exn)

let test_pool_outcomes_keep_completed_work () =
  let f i = if i mod 3 = 1 then failwith (Printf.sprintf "task %d" i) else i * 7 in
  let check outcomes =
    Array.iteri
      (fun i o ->
        match (o, i mod 3 = 1) with
        | Pool.Ok r, false -> Alcotest.(check int) "completed result kept" (i * 7) r
        | Pool.Crashed (Failure _, _), true -> ()
        | Pool.Ok _, true -> Alcotest.failf "task %d should have crashed" i
        | Pool.Crashed _, _ -> Alcotest.failf "task %d should have completed" i)
      outcomes
  in
  check (Pool.run_outcomes ~workers:1 ~tasks:10 f);
  check (Pool.run_outcomes ~workers:4 ~tasks:10 f)

let test_pool_rejects_bad_args () =
  Alcotest.check_raises "workers < 1"
    (Invalid_argument "Pool.run_outcomes: workers < 1") (fun () ->
      ignore (Pool.run ~workers:0 ~tasks:1 (fun i -> i)))

(* Regression (satellite fix): a worker dying between claiming a task and
   filling its slot used to surface as [assert false] in join — an
   anonymous Assert_failure pointing at pool.ml instead of at the task.
   The empty slot now reports a typed error naming the task index, and
   [run] wraps it in Task_failed like any other crash. *)
let test_pool_missing_result_names_task () =
  let msg = Printexc.to_string (Pool.Missing_result { task = 17 }) in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("names the task: " ^ msg) true (contains "task 17");
  Alcotest.(check bool) ("says what went wrong: " ^ msg) true (contains "no worker filled")

(* --- Json --------------------------------------------------------------- *)

let json = Alcotest.testable Json.pp ( = )

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 3.25;
      Json.String "with \"quotes\", back\\slash, tab\t and newline\n";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj [ ("a", Json.Int 1); ("nested", Json.Obj [ ("b", Json.List [ Json.Null ]) ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok parsed -> Alcotest.check json "roundtrip" v parsed
      | Error e -> Alcotest.failf "failed to reparse %s: %s" (Json.to_string v) e)
    samples

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v -> Alcotest.failf "%S unexpectedly parsed to %s" s (Json.to_string v)
      | Error _ -> ())
    bad

(* Regression (satellite fix): [Float nan] and [Float ±infinity] used to
   print as "nan" / "inf" / "-inf", which no JSON parser — including this
   one — accepts; a campaign whose stats produced a single NaN wrote an
   unreadable results file. They now encode as null. *)
let test_json_nonfinite_encodes_null () =
  List.iter
    (fun f ->
      Alcotest.(check string) "bare non-finite" "null" (Json.to_string (Json.Float f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check string) "nested non-finite" "{\"v\":[1,null]}"
    (Json.to_string (Json.Obj [ ("v", Json.List [ Json.Int 1; Json.Float Float.nan ]) ]))

(* Property: every encoding parses back, and parse ∘ to_string is the
   identity up to the documented lossy case (non-finite floats read back
   as Null). The generator deliberately mixes nan/±inf into the floats. *)
let json_gen =
  let open QCheck2.Gen in
  let any_float =
    oneof
      [
        float;
        oneofl [ Float.nan; Float.infinity; Float.neg_infinity; 0.25; -0.0; 1e308; 3.0 ];
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (1 -- 4) in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) int;
        map (fun f -> Json.Float f) any_float;
        map (fun s -> Json.String s) (string_size ~gen:printable (0 -- 8));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun xs -> Json.List xs) (list_size (0 -- 4) (self (depth - 1)));
            map (fun kvs -> Json.Obj kvs) (list_size (0 -- 4) (pair key (self (depth - 1))));
          ])
    3

let rec scrub_nonfinite = function
  | Json.Float f when not (Float.is_finite f) -> Json.Null
  | Json.List xs -> Json.List (List.map scrub_nonfinite xs)
  | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, scrub_nonfinite v)) kvs)
  | v -> v

let prop_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"encode/decode roundtrip incl. nan and ±inf" ~count:500 json_gen
       (fun v ->
         match Json.parse (Json.to_string v) with
         | Error e -> QCheck2.Test.fail_reportf "unparseable %S: %s" (Json.to_string v) e
         | Ok parsed -> parsed = scrub_nonfinite v))

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.Int 7); ("f", Json.Float 1.5); ("s", Json.String "x") ] in
  Alcotest.(check (option int)) "member int" (Some 7) Json.(Option.bind (member "n" v) to_int);
  Alcotest.(check (option (float 0.0))) "int widens to float" (Some 7.0)
    Json.(Option.bind (member "n" v) to_float);
  Alcotest.(check (option int)) "missing member" None Json.(Option.bind (member "zz" v) to_int);
  Alcotest.(check (option int)) "wrong constructor" None Json.(Option.bind (member "s" v) to_int)

(* --- Plan / Shard -------------------------------------------------------- *)

let test_split_trials () =
  Alcotest.(check (array int)) "even" [| 25; 25; 25; 25 |] (Plan.split_trials ~trials:100 ~shards:4);
  Alcotest.(check (array int)) "remainder to early shards" [| 34; 33; 33 |]
    (Plan.split_trials ~trials:100 ~shards:3);
  Alcotest.check_raises "too many shards" (Invalid_argument "Plan.split_trials") (fun () ->
      ignore (Plan.split_trials ~trials:2 ~shards:3))

let test_shard_rng_is_positional () =
  (* shard i's stream = the i-th split of the campaign root, regardless of
     which shard value asks *)
  let shard index = { Shard.index; count = 5; label = "s"; trials = 1 } in
  let family = Rng.split_n (Rng.create 77L) 5 in
  for i = 0 to 4 do
    Alcotest.(check int64) "stream matches family" (Rng.next64 family.(i))
      (Rng.next64 (Shard.rng ~campaign_seed:77L (shard i)))
  done

(* --- Campaign determinism (tier-1 acceptance) ---------------------------- *)

let check_estimates = Alcotest.(array (triple int int (float 0.0)))

let table1_fingerprint outcome =
  Array.map
    (fun (e : Games.estimate) -> (e.Games.successes, e.Games.trials, e.Games.rate))
    (Plans.table1_estimates outcome)

let test_table1_workers_identical () =
  (* the ISSUE acceptance criterion: a 4-worker campaign run of the
     Table 1 game equals the 1-worker run result-for-result *)
  let plan () = Plans.table1_plan ~scale:0.01 ~seed:5L () in
  let sequential = Campaign.run ~workers:1 (plan ()) in
  let parallel = Campaign.run ~workers:4 (plan ()) in
  Alcotest.check check_estimates "1 worker = 4 workers" (table1_fingerprint sequential)
    (table1_fingerprint parallel);
  (* and per-shard, not only per-cell *)
  Alcotest.(check (array (pair int int)))
    "per-shard results identical"
    (Array.map (fun (c, (e : Games.estimate)) -> (c, e.Games.successes)) (Campaign.results_exn sequential))
    (Array.map (fun (c, (e : Games.estimate)) -> (c, e.Games.successes)) (Campaign.results_exn parallel))

let with_temp_checkpoint f =
  let path = Filename.temp_file "pacstack_campaign" ".ck" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_resume_equals_uninterrupted () =
  let plan () = Plans.table1_plan ~scale:0.01 ~seed:6L () in
  let uninterrupted = Campaign.run ~workers:1 (plan ()) in
  with_temp_checkpoint (fun path ->
      (* simulate a killed run: execute fully, then truncate the manifest
         to the header plus the first 7 completed-shard records *)
      let full = Campaign.run ~checkpoint:(path, Plans.table1_codec) (plan ()) in
      Alcotest.check check_estimates "checkpointed run = plain run"
        (table1_fingerprint uninterrupted) (table1_fingerprint full);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let kept = List.filteri (fun i _ -> i < 8) lines in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
      let resumed = Campaign.run ~workers:4 ~checkpoint:(path, Plans.table1_codec) (plan ()) in
      Alcotest.(check int) "7 shards restored" 7 resumed.Campaign.resumed;
      Alcotest.check check_estimates "resumed = uninterrupted"
        (table1_fingerprint uninterrupted) (table1_fingerprint resumed))

let test_resume_skips_completed_work () =
  let plan () = Plans.birthday_plan ~scale:0.2 ~seed:8L () in
  with_temp_checkpoint (fun path ->
      let first = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check int) "fresh run resumes nothing" 0 first.Campaign.resumed;
      let again = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check int) "second run restores every shard"
        (Plan.shard_count (plan ()))
        again.Campaign.resumed;
      Alcotest.(check (array int)) "results identical" (Campaign.results_exn first) (Campaign.results_exn again))

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_checkpoint_rejects_foreign_manifest () =
  with_temp_checkpoint (fun path ->
      let _ = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (Plans.birthday_plan ~scale:0.05 ~seed:8L ()) in
      (* same campaign name, different seed: must refuse with the typed
         error carrying both headers, not recompute and not a bare Failure *)
      match Campaign.run ~checkpoint:(path, Plans.birthday_codec) (Plans.birthday_plan ~scale:0.05 ~seed:9L ()) with
      | _ -> Alcotest.fail "foreign manifest accepted"
      | exception (Checkpoint.Stale_manifest { path = p; expected; found } as e) ->
        Alcotest.(check string) "names the file" path p;
        Alcotest.(check bool) "expected header carries the new seed" true
          (contains expected "\"seed\":\"9\"");
        Alcotest.(check bool) "found header carries the manifest's seed" true
          (contains found "\"seed\":\"8\"");
        let msg = Printexc.to_string e in
        Alcotest.(check bool) ("printer shows the delta: " ^ msg) true
          (contains msg path && contains msg "expected header" && contains msg "found header"))

let test_checkpoint_ignores_torn_line () =
  let plan () = Plans.birthday_plan ~scale:0.05 ~seed:8L () in
  with_temp_checkpoint (fun path ->
      let full = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      (* simulate dying mid-write: append half a record *)
      Out_channel.with_open_gen [ Open_append ] 0o644 path (fun oc ->
          Out_channel.output_string oc "{\"shard\":2,\"resu");
      let resumed = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check (array int)) "torn line ignored, results identical" (Campaign.results_exn full)
        (Campaign.results_exn resumed))

(* --- Crash tolerance: retry, quarantine, watchdog (ISSUE 3) -------------- *)

module Watchdog = Pacstack_campaign.Watchdog

(* A tiny synthetic plan whose shard results are pure functions of the
   shard rng, with a hook to make chosen shards fail. *)
let synthetic_plan ?(shards = 6) ~seed ~fail () =
  Plan.make ~name:"synthetic" ~seed
    ~shards:(Array.init shards (fun i -> (Printf.sprintf "syn#%d" i, 3)))
    ~run:(fun shard rng ->
      fail shard;
      Int64.to_int (Int64.logand (Rng.next64 rng) 0xffffL) + shard.Shard.index)

let no_backoff = { Campaign.default_policy with backoff_s = (fun _ -> 0.) }

let test_quarantine_isolates_failing_shard () =
  let fail (s : Shard.t) = if s.Shard.index = 2 then failwith "shard 2 is cursed" in
  let reference =
    Campaign.run (synthetic_plan ~seed:11L ~fail:(fun _ -> ()) ())
  in
  with_temp_checkpoint (fun path ->
      let outcome =
        Campaign.run ~workers:4 ~policy:no_backoff
          ~checkpoint:(path, { Checkpoint.encode = (fun r -> Json.Int r);
                               decode = Json.to_int })
          (synthetic_plan ~seed:11L ~fail ())
      in
      (match outcome.Campaign.quarantined with
      | [ q ] ->
        Alcotest.(check int) "quarantined shard index" 2 q.Campaign.shard;
        Alcotest.(check int) "attempts = 1 + retries" 3 q.Campaign.attempts;
        Alcotest.(check bool) "error preserved" true
          (contains q.Campaign.error "shard 2 is cursed")
      | qs -> Alcotest.failf "expected exactly one quarantine, got %d" (List.length qs));
      Alcotest.(check (option int)) "failed shard has no result" None outcome.Campaign.results.(2);
      (* every healthy shard's result is present, correct and checkpointed *)
      Array.iteri
        (fun i r -> if i <> 2 then
            Alcotest.(check (option int)) "healthy shard result intact" r outcome.Campaign.results.(i))
        reference.Campaign.results;
      Alcotest.check_raises "results_exn reports the quarantine"
        (Failure
           "Campaign synthetic: 1 shard(s) quarantined: shard 2 (syn#2): Failure(\"shard 2 is cursed\")")
        (fun () -> ignore (Campaign.results_exn outcome));
      (* the manifest records the quarantine and restores only the healthy
         shards on resume; the cursed shard is re-run (and fails again) *)
      let manifest = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check bool) "manifest records quarantine" true
        (List.exists (fun l -> contains l "\"quarantined\":true") manifest);
      let resumed =
        Campaign.run ~policy:no_backoff
          ~checkpoint:(path, { Checkpoint.encode = (fun r -> Json.Int r);
                               decode = Json.to_int })
          (synthetic_plan ~seed:11L ~fail ())
      in
      Alcotest.(check int) "healthy shards restored, cursed shard retried" 5
        resumed.Campaign.resumed;
      Alcotest.(check int) "still quarantined on resume" 1
        (List.length resumed.Campaign.quarantined))

let test_transient_failure_is_retried () =
  (* fails on its first attempt only: with one retry the campaign result
     must equal the untroubled run's, with no quarantine *)
  let tries = ref 0 in
  let fail (s : Shard.t) =
    if s.Shard.index = 1 then begin
      incr tries;
      if !tries = 1 then failwith "transient"
    end
  in
  let retried = ref 0 in
  let sink = function Progress.Shard_retried _ -> incr retried | _ -> () in
  let outcome =
    Campaign.run ~policy:no_backoff ~progress:sink (synthetic_plan ~seed:12L ~fail ())
  in
  let reference = Campaign.run (synthetic_plan ~seed:12L ~fail:(fun _ -> ()) ()) in
  Alcotest.(check int) "exactly one retry" 1 !retried;
  Alcotest.(check int) "no quarantine" 0 (List.length outcome.Campaign.quarantined);
  Alcotest.(check (array (option int))) "retried run = untroubled run"
    reference.Campaign.results outcome.Campaign.results

let test_watchdog_budget () =
  Alcotest.(check (option int)) "no budget outside with_budget" None (Watchdog.remaining ());
  Watchdog.tick ~cost:1000 () (* free when uninstalled *);
  let r =
    Watchdog.with_budget 5 (fun () ->
        Watchdog.tick ~cost:3 ();
        Watchdog.with_budget 10 (fun () -> Watchdog.tick ~cost:9 ());
        (* inner budget restored to outer *)
        Alcotest.(check (option int)) "outer budget restored" (Some 2) (Watchdog.remaining ());
        17)
  in
  Alcotest.(check int) "body result" 17 r;
  Alcotest.check_raises "exhaustion raises" (Watchdog.Exhausted { budget = 4 }) (fun () ->
      Watchdog.with_budget 4 (fun () -> Watchdog.tick ~cost:5 ()))

(* Satellite regression: a negative tick would silently *grow* the fuel
   budget; it must be rejected with a message naming the cost value,
   installed budget or not. *)
let test_watchdog_rejects_negative_cost () =
  Alcotest.check_raises "uninstalled" (Invalid_argument "Watchdog.tick: cost -3 < 0")
    (fun () -> Watchdog.tick ~cost:(-3) ());
  Alcotest.check_raises "installed" (Invalid_argument "Watchdog.tick: cost -7 < 0")
    (fun () -> Watchdog.with_budget 100 (fun () -> Watchdog.tick ~cost:(-7) ()))

let test_watchdog_quarantines_runaway_shard () =
  (* shard 3 "hangs": it ticks far beyond the policy budget *)
  let fail (s : Shard.t) =
    if s.Shard.index = 3 then
      for _ = 1 to 1000 do
        Watchdog.tick ()
      done
    else Watchdog.tick ~cost:2 ()
  in
  let policy = { no_backoff with Campaign.shard_fuel = Some 100; retries = 1 } in
  let outcome = Campaign.run ~workers:2 ~policy (synthetic_plan ~seed:13L ~fail ()) in
  match outcome.Campaign.quarantined with
  | [ q ] ->
    Alcotest.(check int) "runaway shard quarantined" 3 q.Campaign.shard;
    Alcotest.(check bool) "cause is watchdog exhaustion" true
      (contains q.Campaign.error "Exhausted");
    Alcotest.(check int) "other shards unharmed" 5
      (Array.fold_left (fun n r -> if r = None then n else n + 1) 0 outcome.Campaign.results)
  | qs -> Alcotest.failf "expected exactly one quarantine, got %d" (List.length qs)

let test_fail_fast_policy_aborts () =
  let fail (s : Shard.t) = if s.Shard.index = 4 then failwith "fatal" in
  let policy = { Campaign.default_policy with fail_fast = true } in
  match Campaign.run ~policy (synthetic_plan ~seed:14L ~fail ()) with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Pool.Task_failed { task; exn; _ } ->
    Alcotest.(check int) "task index attached" 4 task;
    Alcotest.(check bool) "exception preserved" true
      (Printexc.to_string exn |> fun s -> contains s "fatal")

(* --- Mega campaigns: hierarchical checkpoint compaction ------------------ *)

(* The fork-based process pool and the SIGKILL crash-recovery e2e live
   in test_procpool.ml: OCaml 5 forbids Unix.fork in a process that has
   ever created another domain, and this suite spawns domain pools. The
   compaction tests below run at 1 worker (inline, no domains, no
   forks), so they stay here with the other checkpoint tests. *)

let mega_fingerprint outcome = Plans.mega_totals outcome

let test_compaction_resumes_identically () =
  let plan () = Plans.mega_plan ~pac_bits:6 ~faults:24 ~shard_faults:4 ~seed:22L () in
  let uninterrupted = Campaign.run ~workers:1 (plan ()) in
  with_temp_checkpoint (fun path ->
      let compacted =
        Campaign.run
          ~checkpoint:(path, Plans.mega_codec)
          ~compaction:(Plans.mega_compaction ~keep:2)
          (plan ())
      in
      Alcotest.(check bool) "compacted run = plain run" true
        (mega_fingerprint compacted = mega_fingerprint uninterrupted);
      (* the manifest has collapsed to the header plus merged statistics *)
      let lines = In_channel.with_open_text path In_channel.input_lines in
      Alcotest.(check bool) "manifest holds a merged line" true
        (List.exists (fun l -> contains l "\"merged\":true") lines);
      Alcotest.(check bool) "manifest stays O(1) lines, not O(shards)" true
        (List.length lines <= 3);
      let resumed =
        Campaign.run
          ~checkpoint:(path, Plans.mega_codec)
          ~compaction:(Plans.mega_compaction ~keep:2)
          (plan ())
      in
      Alcotest.(check int) "every shard restored from the merged blob"
        (Plan.shard_count (plan ()))
        resumed.Campaign.resumed;
      Alcotest.(check bool) "resumed = uninterrupted" true
        (mega_fingerprint resumed = mega_fingerprint uninterrupted))

(* A manifest truncated right after a compaction rename — merged line
   present, later per-shard appends lost — restores the covered shards
   and recomputes only the remainder, bit-identically. The merged blob
   folds before the recomputed shards, which is why [Mega.merge] must be
   commutative, not merely associative. *)
let test_partial_compacted_manifest_resumes () =
  let plan () = Plans.mega_plan ~pac_bits:6 ~faults:24 ~shard_faults:4 ~seed:23L () in
  let uninterrupted = Campaign.run ~workers:1 (plan ()) in
  with_temp_checkpoint (fun path ->
      let _ =
        Campaign.run
          ~checkpoint:(path, Plans.mega_codec)
          ~compaction:(Plans.mega_compaction ~keep:4)
          (plan ())
      in
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let kept =
        List.filteri (fun i l -> i = 0 || contains l "\"merged\":true") lines
      in
      Alcotest.(check int) "header + one merged line kept" 2 (List.length kept);
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
      let resumed =
        Campaign.run
          ~checkpoint:(path, Plans.mega_codec)
          ~compaction:(Plans.mega_compaction ~keep:4)
          (plan ())
      in
      Alcotest.(check int) "merged shards restored" 4 resumed.Campaign.resumed;
      Alcotest.(check bool) "resumed = uninterrupted" true
        (mega_fingerprint resumed = mega_fingerprint uninterrupted))

(* Satellite: a manifest with both a torn trailing line and a corrupted
   interior line restores exactly the intact shards and recomputes the
   rest bit-identically. *)
let test_checkpoint_survives_interior_corruption () =
  let plan () = Plans.birthday_plan ~scale:0.05 ~seed:8L () in
  with_temp_checkpoint (fun path ->
      let full = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      let shards = Plan.shard_count (plan ()) in
      Alcotest.(check int) "fresh run resumes nothing" 0 full.Campaign.resumed;
      let lines = In_channel.with_open_text path In_channel.input_lines in
      (* corrupt the 3rd record in place (bit rot), keep the rest, and
         append a torn line (crash mid-write) *)
      let mangled =
        List.mapi (fun i l -> if i = 3 then String.map (fun _ -> '#') l else l) lines
      in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) mangled;
          Out_channel.output_string oc "{\"shard\":5,\"resu");
      let resumed = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check int) "all but the corrupted shard restored" (shards - 1)
        resumed.Campaign.resumed;
      Alcotest.(check (array int)) "re-run bit-identical" (Campaign.results_exn full)
        (Campaign.results_exn resumed))

let test_progress_events_cover_campaign () =
  let events = ref [] in
  let sink e = events := e :: !events in
  let plan = Plans.birthday_plan ~scale:0.05 ~seed:8L () in
  let _ = Campaign.run ~workers:2 ~progress:sink plan in
  let count p = List.length (List.filter p !events) in
  let shards = Plan.shard_count plan in
  Alcotest.(check int) "one start" 1
    (count (function Progress.Campaign_started _ -> true | _ -> false));
  Alcotest.(check int) "one finish" 1
    (count (function Progress.Campaign_finished _ -> true | _ -> false));
  Alcotest.(check int) "every shard starts" shards
    (count (function Progress.Shard_started _ -> true | _ -> false));
  Alcotest.(check int) "every shard finishes" shards
    (count (function Progress.Shard_finished _ -> true | _ -> false));
  (* the last Shard_finished (head of the reversed trace is
     Campaign_finished, then the final shard) reports full completion *)
  match !events with
  | Progress.Campaign_finished _ :: Progress.Shard_finished f :: _ ->
    Alcotest.(check int) "final completed = total" f.total f.completed
  | _ -> Alcotest.fail "unexpected event trace shape"

let () =
  Alcotest.run "campaign"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exception;
          Alcotest.test_case "outcomes keep completed work" `Quick
            test_pool_outcomes_keep_completed_work;
          Alcotest.test_case "rejects bad args" `Quick test_pool_rejects_bad_args;
          Alcotest.test_case "missing result names the task" `Quick
            test_pool_missing_result_names_task;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite floats encode as null" `Quick
            test_json_nonfinite_encodes_null;
          prop_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "plan",
        [
          Alcotest.test_case "split_trials" `Quick test_split_trials;
          Alcotest.test_case "shard rng is positional" `Quick test_shard_rng_is_positional;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table1: 1 worker = 4 workers" `Quick test_table1_workers_identical;
          Alcotest.test_case "table1: resume = uninterrupted" `Quick test_resume_equals_uninterrupted;
          Alcotest.test_case "resume skips completed shards" `Quick test_resume_skips_completed_work;
          Alcotest.test_case "foreign manifest rejected" `Quick test_checkpoint_rejects_foreign_manifest;
          Alcotest.test_case "torn manifest line ignored" `Quick test_checkpoint_ignores_torn_line;
          Alcotest.test_case "interior corruption recovered" `Quick
            test_checkpoint_survives_interior_corruption;
        ] );
      ( "crash tolerance",
        [
          Alcotest.test_case "quarantine isolates failing shard" `Quick
            test_quarantine_isolates_failing_shard;
          Alcotest.test_case "transient failure retried" `Quick test_transient_failure_is_retried;
          Alcotest.test_case "watchdog budget" `Quick test_watchdog_budget;
          Alcotest.test_case "watchdog rejects negative cost" `Quick
            test_watchdog_rejects_negative_cost;
          Alcotest.test_case "watchdog quarantines runaway shard" `Quick
            test_watchdog_quarantines_runaway_shard;
          Alcotest.test_case "fail-fast policy aborts" `Quick test_fail_fast_policy_aborts;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "compacted manifest resumes identically" `Quick
            test_compaction_resumes_identically;
          Alcotest.test_case "partial compacted manifest resumes" `Quick
            test_partial_compacted_manifest_resumes;
        ] );
      ( "progress",
        [ Alcotest.test_case "event trace" `Quick test_progress_events_cover_campaign ] );
    ]
