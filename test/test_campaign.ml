(* Tests for the campaign engine: the domain pool, the JSON codec, the
   checkpoint manifest, and the determinism contract — a parallel run of
   a plan is identical to a sequential run, and an interrupted-and-resumed
   run is identical to an uninterrupted one. *)

module Rng = Pacstack_util.Rng
module Json = Pacstack_campaign.Json
module Plan = Pacstack_campaign.Plan
module Shard = Pacstack_campaign.Shard
module Pool = Pacstack_campaign.Pool
module Progress = Pacstack_campaign.Progress
module Checkpoint = Pacstack_campaign.Checkpoint
module Campaign = Pacstack_campaign.Campaign
module Games = Pacstack_acs.Games
module Plans = Pacstack_report.Plans

(* --- Pool --------------------------------------------------------------- *)

let test_pool_matches_sequential () =
  let f i = (i * i) + 3 in
  let expected = Array.init 23 f in
  Alcotest.(check (array int)) "1 worker" expected (Pool.run ~workers:1 ~tasks:23 f);
  Alcotest.(check (array int)) "4 workers" expected (Pool.run ~workers:4 ~tasks:23 f);
  Alcotest.(check (array int)) "more workers than tasks" expected
    (Pool.run ~workers:64 ~tasks:23 f);
  Alcotest.(check (array int)) "no tasks" [||] (Pool.run ~workers:4 ~tasks:0 f)

let test_pool_propagates_exception () =
  Alcotest.check_raises "failure crosses domains" (Failure "task 3") (fun () ->
      ignore
        (Pool.run ~workers:4 ~tasks:8 (fun i ->
             if i = 3 then failwith "task 3" else i)))

let test_pool_rejects_bad_args () =
  Alcotest.check_raises "workers < 1" (Invalid_argument "Pool.run: workers < 1") (fun () ->
      ignore (Pool.run ~workers:0 ~tasks:1 (fun i -> i)))

(* --- Json --------------------------------------------------------------- *)

let json = Alcotest.testable Json.pp ( = )

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 3.25;
      Json.String "with \"quotes\", back\\slash, tab\t and newline\n";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj [ ("a", Json.Int 1); ("nested", Json.Obj [ ("b", Json.List [ Json.Null ]) ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok parsed -> Alcotest.check json "roundtrip" v parsed
      | Error e -> Alcotest.failf "failed to reparse %s: %s" (Json.to_string v) e)
    samples

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v -> Alcotest.failf "%S unexpectedly parsed to %s" s (Json.to_string v)
      | Error _ -> ())
    bad

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.Int 7); ("f", Json.Float 1.5); ("s", Json.String "x") ] in
  Alcotest.(check (option int)) "member int" (Some 7) Json.(Option.bind (member "n" v) to_int);
  Alcotest.(check (option (float 0.0))) "int widens to float" (Some 7.0)
    Json.(Option.bind (member "n" v) to_float);
  Alcotest.(check (option int)) "missing member" None Json.(Option.bind (member "zz" v) to_int);
  Alcotest.(check (option int)) "wrong constructor" None Json.(Option.bind (member "s" v) to_int)

(* --- Plan / Shard -------------------------------------------------------- *)

let test_split_trials () =
  Alcotest.(check (array int)) "even" [| 25; 25; 25; 25 |] (Plan.split_trials ~trials:100 ~shards:4);
  Alcotest.(check (array int)) "remainder to early shards" [| 34; 33; 33 |]
    (Plan.split_trials ~trials:100 ~shards:3);
  Alcotest.check_raises "too many shards" (Invalid_argument "Plan.split_trials") (fun () ->
      ignore (Plan.split_trials ~trials:2 ~shards:3))

let test_shard_rng_is_positional () =
  (* shard i's stream = the i-th split of the campaign root, regardless of
     which shard value asks *)
  let shard index = { Shard.index; count = 5; label = "s"; trials = 1 } in
  let family = Rng.split_n (Rng.create 77L) 5 in
  for i = 0 to 4 do
    Alcotest.(check int64) "stream matches family" (Rng.next64 family.(i))
      (Rng.next64 (Shard.rng ~campaign_seed:77L (shard i)))
  done

(* --- Campaign determinism (tier-1 acceptance) ---------------------------- *)

let check_estimates = Alcotest.(array (triple int int (float 0.0)))

let table1_fingerprint outcome =
  Array.map
    (fun (e : Games.estimate) -> (e.Games.successes, e.Games.trials, e.Games.rate))
    (Plans.table1_estimates outcome)

let test_table1_workers_identical () =
  (* the ISSUE acceptance criterion: a 4-worker campaign run of the
     Table 1 game equals the 1-worker run result-for-result *)
  let plan () = Plans.table1_plan ~scale:0.01 ~seed:5L () in
  let sequential = Campaign.run ~workers:1 (plan ()) in
  let parallel = Campaign.run ~workers:4 (plan ()) in
  Alcotest.check check_estimates "1 worker = 4 workers" (table1_fingerprint sequential)
    (table1_fingerprint parallel);
  (* and per-shard, not only per-cell *)
  Alcotest.(check (array (pair int int)))
    "per-shard results identical"
    (Array.map (fun (c, (e : Games.estimate)) -> (c, e.Games.successes)) sequential.Campaign.results)
    (Array.map (fun (c, (e : Games.estimate)) -> (c, e.Games.successes)) parallel.Campaign.results)

let with_temp_checkpoint f =
  let path = Filename.temp_file "pacstack_campaign" ".ck" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_resume_equals_uninterrupted () =
  let plan () = Plans.table1_plan ~scale:0.01 ~seed:6L () in
  let uninterrupted = Campaign.run ~workers:1 (plan ()) in
  with_temp_checkpoint (fun path ->
      (* simulate a killed run: execute fully, then truncate the manifest
         to the header plus the first 7 completed-shard records *)
      let full = Campaign.run ~checkpoint:(path, Plans.table1_codec) (plan ()) in
      Alcotest.check check_estimates "checkpointed run = plain run"
        (table1_fingerprint uninterrupted) (table1_fingerprint full);
      let lines = In_channel.with_open_text path In_channel.input_lines in
      let kept = List.filteri (fun i _ -> i < 8) lines in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
      let resumed = Campaign.run ~workers:4 ~checkpoint:(path, Plans.table1_codec) (plan ()) in
      Alcotest.(check int) "7 shards restored" 7 resumed.Campaign.resumed;
      Alcotest.check check_estimates "resumed = uninterrupted"
        (table1_fingerprint uninterrupted) (table1_fingerprint resumed))

let test_resume_skips_completed_work () =
  let plan () = Plans.birthday_plan ~scale:0.2 ~seed:8L () in
  with_temp_checkpoint (fun path ->
      let first = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check int) "fresh run resumes nothing" 0 first.Campaign.resumed;
      let again = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check int) "second run restores every shard"
        (Plan.shard_count (plan ()))
        again.Campaign.resumed;
      Alcotest.(check (array int)) "results identical" first.Campaign.results again.Campaign.results)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_checkpoint_rejects_foreign_manifest () =
  with_temp_checkpoint (fun path ->
      let _ = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (Plans.birthday_plan ~scale:0.05 ~seed:8L ()) in
      (* same campaign name, different seed: must refuse, not recompute *)
      match Campaign.run ~checkpoint:(path, Plans.birthday_codec) (Plans.birthday_plan ~scale:0.05 ~seed:9L ()) with
      | _ -> Alcotest.fail "foreign manifest accepted"
      | exception Failure msg ->
        Alcotest.(check bool) "error names the file" true (contains msg path))

let test_checkpoint_ignores_torn_line () =
  let plan () = Plans.birthday_plan ~scale:0.05 ~seed:8L () in
  with_temp_checkpoint (fun path ->
      let full = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      (* simulate dying mid-write: append half a record *)
      Out_channel.with_open_gen [ Open_append ] 0o644 path (fun oc ->
          Out_channel.output_string oc "{\"shard\":2,\"resu");
      let resumed = Campaign.run ~checkpoint:(path, Plans.birthday_codec) (plan ()) in
      Alcotest.(check (array int)) "torn line ignored, results identical" full.Campaign.results
        resumed.Campaign.results)

let test_progress_events_cover_campaign () =
  let events = ref [] in
  let sink e = events := e :: !events in
  let plan = Plans.birthday_plan ~scale:0.05 ~seed:8L () in
  let _ = Campaign.run ~workers:2 ~progress:sink plan in
  let count p = List.length (List.filter p !events) in
  let shards = Plan.shard_count plan in
  Alcotest.(check int) "one start" 1
    (count (function Progress.Campaign_started _ -> true | _ -> false));
  Alcotest.(check int) "one finish" 1
    (count (function Progress.Campaign_finished _ -> true | _ -> false));
  Alcotest.(check int) "every shard starts" shards
    (count (function Progress.Shard_started _ -> true | _ -> false));
  Alcotest.(check int) "every shard finishes" shards
    (count (function Progress.Shard_finished _ -> true | _ -> false));
  (* the last Shard_finished (head of the reversed trace is
     Campaign_finished, then the final shard) reports full completion *)
  match !events with
  | Progress.Campaign_finished _ :: Progress.Shard_finished f :: _ ->
    Alcotest.(check int) "final completed = total" f.total f.completed
  | _ -> Alcotest.fail "unexpected event trace shape"

let () =
  Alcotest.run "campaign"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "propagates exceptions" `Quick test_pool_propagates_exception;
          Alcotest.test_case "rejects bad args" `Quick test_pool_rejects_bad_args;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "plan",
        [
          Alcotest.test_case "split_trials" `Quick test_split_trials;
          Alcotest.test_case "shard rng is positional" `Quick test_shard_rng_is_positional;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table1: 1 worker = 4 workers" `Quick test_table1_workers_identical;
          Alcotest.test_case "table1: resume = uninterrupted" `Quick test_resume_equals_uninterrupted;
          Alcotest.test_case "resume skips completed shards" `Quick test_resume_skips_completed_work;
          Alcotest.test_case "foreign manifest rejected" `Quick test_checkpoint_rejects_foreign_manifest;
          Alcotest.test_case "torn manifest line ignored" `Quick test_checkpoint_ignores_torn_line;
        ] );
      ( "progress",
        [ Alcotest.test_case "event trace" `Quick test_progress_events_cover_campaign ] );
    ]
