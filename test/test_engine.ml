(* Differential suite pinning the threaded-code engine to the reference
   interpreter.  [Machine.run]/[step] dispatch through per-image compiled
   closures (machine.ml, "threaded-code compilation"); [Machine.Reference]
   is the original fetch-then-match loop kept as the oracle.  Everything
   observable must be bit-identical across the two: outcome, trap, every
   register, flags, pc, all counters, program output, the full memory
   state (via [Memory.digest]) and the per-instruction pc trace.

   The suite also pins the execute-check invalidation: the threaded
   engine caches per-code-page execute permission keyed by
   [Memory.generation], so a [protect]/[unmap] of a code page — from
   outside a run or from a hook in mid-run — must trap exactly like the
   reference. *)

module Machine = Pacstack_machine.Machine
module Memory = Pacstack_machine.Memory
module Image = Pacstack_machine.Image
module Trap = Pacstack_machine.Trap
module Scheme = Pacstack_harden.Scheme
module Compile = Pacstack_minic.Compile
module Driver = Pacstack_fuzz.Driver
module Program = Pacstack_isa.Program
module Instr = Pacstack_isa.Instr
module Reg = Pacstack_isa.Reg
module Word64 = Pacstack_util.Word64

let campaign_seed = 1L (* same stream as the tier-1 fuzz smoke *)
let fuel = 100_000

(* --- everything observable about a finished run ----------------------- *)

type snap = {
  outcome : Machine.outcome;
  cycles : int;
  instret : int;
  mem_ops : int;
  pc : int64;
  regs : int64 list; (* X0..X30, SP *)
  flags : Pacstack_isa.Cond.flags;
  output : int64 list;
  mem_digest : int64;
  trace_len : int;
  trace_hash : int64;
}

let fnv h v = Int64.mul (Int64.logxor h v) 0x100000001b3L

let snap_of m outcome ~trace_len ~trace_hash =
  {
    outcome;
    cycles = Machine.cycles m;
    instret = Machine.instructions_retired m;
    mem_ops = Machine.memory_operations m;
    pc = Machine.pc m;
    regs =
      List.init 31 (fun i -> Machine.get m (Reg.X i)) @ [ Machine.get m Reg.SP ];
    flags = Machine.flags m;
    output = Machine.output m;
    mem_digest = Memory.digest (Machine.memory m);
    trace_len;
    trace_hash;
  }

let observe runf program =
  let m = Machine.load program in
  let h = ref 0xcbf29ce484222325L in
  let n = ref 0 in
  Machine.set_tracer m (Some (fun m _ -> incr n; h := fnv !h (Machine.pc m)));
  let outcome = runf m in
  snap_of m outcome ~trace_len:!n ~trace_hash:!h

let outcome_equal a b =
  match a, b with
  | Machine.Halted x, Machine.Halted y -> x = y
  | Machine.Faulted f, Machine.Faulted g -> Trap.equal f g
  | Machine.Out_of_fuel, Machine.Out_of_fuel -> true
  | _ -> false

let pp_outcome fmt = function
  | Machine.Halted c -> Format.fprintf fmt "halted(%d)" c
  | Machine.Faulted f -> Format.fprintf fmt "faulted(%a)" Trap.pp f
  | Machine.Out_of_fuel -> Format.fprintf fmt "out-of-fuel"

let check_same ~what a b =
  if not (outcome_equal a.outcome b.outcome) then
    Alcotest.failf "%s: outcome %a vs %a" what pp_outcome a.outcome pp_outcome
      b.outcome;
  if a.cycles <> b.cycles then
    Alcotest.failf "%s: cycles %d vs %d" what a.cycles b.cycles;
  if a.instret <> b.instret then
    Alcotest.failf "%s: instret %d vs %d" what a.instret b.instret;
  if a.mem_ops <> b.mem_ops then
    Alcotest.failf "%s: mem_ops %d vs %d" what a.mem_ops b.mem_ops;
  if not (Int64.equal a.pc b.pc) then
    Alcotest.failf "%s: pc %Lx vs %Lx" what a.pc b.pc;
  if a.regs <> b.regs then Alcotest.failf "%s: register file differs" what;
  if a.flags <> b.flags then Alcotest.failf "%s: flags differ" what;
  if a.output <> b.output then Alcotest.failf "%s: output differs" what;
  if not (Int64.equal a.mem_digest b.mem_digest) then
    Alcotest.failf "%s: memory digest %Lx vs %Lx" what a.mem_digest b.mem_digest;
  if a.trace_len <> b.trace_len then
    Alcotest.failf "%s: trace length %d vs %d" what a.trace_len b.trace_len;
  if not (Int64.equal a.trace_hash b.trace_hash) then
    Alcotest.failf "%s: pc-trace hash differs over %d steps" what a.trace_len

(* --- 200 fuzz programs x all registered schemes, full-run equivalence --------------- *)

let test_differential () =
  for seed = 0 to 199 do
    let ast = Driver.program_of_seed ~campaign_seed seed in
    List.iter
      (fun scheme ->
        let program = Compile.compile ~scheme ast in
        let threaded = observe (fun m -> Machine.run ~fuel m) program in
        let reference = observe (fun m -> Machine.Reference.run ~fuel m) program in
        let what =
          Format.asprintf "seed %d / %a" seed Scheme.pp scheme
        in
        check_same ~what threaded reference)
      Scheme.all
  done

(* --- single-step lockstep: [step] vs [Reference.step] ------------------ *)

let test_step_lockstep () =
  for seed = 0 to 19 do
    let program =
      Compile.compile ~scheme:Scheme.pacstack
        (Driver.program_of_seed ~campaign_seed seed)
    in
    let a = Machine.load program in
    let b = Machine.load program in
    let steps = ref 0 in
    let continue = ref true in
    while !continue && !steps < 5_000 do
      incr steps;
      let ta = try Machine.step a; None with Trap.Fault f -> Some f in
      let tb = try Machine.Reference.step b; None with Trap.Fault f -> Some f in
      (match ta, tb with
      | None, None -> ()
      | Some f, Some g when Trap.equal f g -> continue := false
      | _ -> Alcotest.failf "seed %d: trap divergence at step %d" seed !steps);
      if not (Int64.equal (Machine.pc a) (Machine.pc b)) then
        Alcotest.failf "seed %d: pc %Lx vs %Lx at step %d" seed (Machine.pc a)
          (Machine.pc b) !steps;
      if Machine.cycles a <> Machine.cycles b then
        Alcotest.failf "seed %d: cycle divergence at step %d" seed !steps;
      if Machine.halted a <> None then continue := false
    done
  done

(* --- run_until: pause points and stop-call counts must agree ----------- *)

let test_run_until_pauses () =
  for seed = 0 to 19 do
    let program =
      Compile.compile ~scheme:Scheme.pacstack
        (Driver.program_of_seed ~campaign_seed seed)
    in
    let run_one runf untilf =
      let m = Machine.load program in
      let calls = ref 0 in
      let stop m = incr calls; Machine.instructions_retired m >= 700 in
      let paused = untilf m ~stop in
      let mid = (Machine.pc m, Machine.instructions_retired m, !calls) in
      (* resume to the end with a plain run *)
      let final = match paused with None -> Some (runf m) | some -> some in
      (paused = None, mid, final)
    in
    let pa, mida, fina =
      run_one (fun m -> Machine.run ~fuel m) (Machine.run_until ~fuel)
    in
    let pb, midb, finb =
      run_one
        (fun m -> Machine.Reference.run ~fuel m)
        (Machine.Reference.run_until ~fuel)
    in
    if pa <> pb then Alcotest.failf "seed %d: one engine paused, one did not" seed;
    if mida <> midb then
      Alcotest.failf "seed %d: pause state differs (pc/instret/stop-calls)" seed;
    match fina, finb with
    | Some oa, Some ob when outcome_equal oa ob -> ()
    | _ -> Alcotest.failf "seed %d: final outcome differs after resume" seed
  done

(* --- execute-check invalidation --------------------------------------- *)

(* [n] straight-line marker instructions then hlt: long enough to cross
   into the second code page (1024 instructions per 4 KiB page). *)
let straightline n =
  Program.make ~entry:"main"
    [
      {
        Program.name = "main";
        body =
          List.init n (fun _ -> Program.Ins (Instr.Mov (Reg.X 1, Instr.Imm 7L)))
          @ [ Program.Ins Instr.Hlt ];
      };
    ]

let page2 = Int64.add Image.code_base (Int64.of_int Memory.page_size)

let both_engines f =
  f "threaded" Machine.step (fun m -> Machine.run ~fuel m);
  f "reference" Machine.Reference.step (fun m -> Machine.Reference.run ~fuel m)

let test_protect_mid_run () =
  both_engines (fun name step run ->
    let m = Machine.load (straightline 1500) in
    for _ = 1 to 500 do step m done;
    (* revoke execute on the second code page while paused in the first *)
    Memory.protect (Machine.memory m) ~addr:page2 ~size:Memory.page_size
      Memory.perm_r;
    (match run m with
    | Machine.Faulted (Trap.Permission (a, Trap.Execute)) ->
      Alcotest.(check int64) (name ^ ": faulting pc") page2 a;
      Alcotest.(check int64) (name ^ ": pc at fault") page2 (Machine.pc m);
      Alcotest.(check int) (name ^ ": steps before fault") 1024
        (Machine.instructions_retired m)
    | oc -> Alcotest.failf "%s: expected execute fault, got %a" name pp_outcome oc);
    (* restore execute: the cached check must revalidate and finish *)
    Memory.protect (Machine.memory m) ~addr:page2 ~size:Memory.page_size
      Memory.perm_rx;
    match run m with
    | Machine.Halted 0 -> ()
    | oc -> Alcotest.failf "%s: expected halt after restore, got %a" name pp_outcome oc)

let test_unmap_mid_run () =
  both_engines (fun name step run ->
    let m = Machine.load (straightline 1500) in
    for _ = 1 to 500 do step m done;
    Memory.unmap (Machine.memory m) ~addr:page2 ~size:Memory.page_size;
    match run m with
    | Machine.Faulted (Trap.Unmapped (a, Trap.Execute)) ->
      Alcotest.(check int64) (name ^ ": faulting pc") page2 a
    | oc -> Alcotest.failf "%s: expected unmapped fault, got %a" name pp_outcome oc)

let test_hook_protects_own_page () =
  (* a hook revokes execute on the page it runs in: the very next
     instruction must fault, on both engines, even though the run loop
     never left [run] between the hook and the fault *)
  both_engines (fun name _step run ->
    let program =
      Program.make ~entry:"main"
        [
          {
            Program.name = "main";
            body =
              [
                Program.Ins (Instr.Hook "mprot");
                Program.Ins Instr.Nop;
                Program.Ins Instr.Hlt;
              ];
          };
        ]
    in
    let m = Machine.load program in
    Machine.attach_hook m "mprot" (fun m ->
        Memory.protect (Machine.memory m) ~addr:Image.code_base
          ~size:Memory.page_size Memory.perm_r);
    match run m with
    | Machine.Faulted (Trap.Permission (_, Trap.Execute)) ->
      Alcotest.(check int) (name ^ ": faulted on the next instruction") 1
        (Machine.instructions_retired m)
    | oc -> Alcotest.failf "%s: expected execute fault, got %a" name pp_outcome oc)

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          Alcotest.test_case "200 seeds x all registered schemes bit-identical" `Quick
            test_differential;
          Alcotest.test_case "step lockstep" `Quick test_step_lockstep;
          Alcotest.test_case "run_until pauses identically" `Quick
            test_run_until_pauses;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "protect revokes execute mid-run" `Quick
            test_protect_mid_run;
          Alcotest.test_case "unmap traps mid-run" `Quick test_unmap_mid_run;
          Alcotest.test_case "hook protects its own page" `Quick
            test_hook_protects_own_page;
        ] );
    ]
