(* Tests for the ISA layer: registers, condition codes, instruction cost
   model, the assembler's print/parse roundtrip and program validation. *)

module Word64 = Pacstack_util.Word64
module Reg = Pacstack_isa.Reg
module Cond = Pacstack_isa.Cond
module Instr = Pacstack_isa.Instr
module Program = Pacstack_isa.Program
module Asm = Pacstack_isa.Asm

let qtest name count gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let full64 =
  QCheck2.Gen.(
    map2 (fun a b -> Int64.logxor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 31)) int int)

(* --- Reg -------------------------------------------------------------------- *)

let test_reg_roundtrip () =
  let all = Reg.SP :: Reg.XZR :: List.init 31 Reg.x in
  List.iter
    (fun r ->
      match Reg.of_string (Reg.to_string r) with
      | Some r' -> Alcotest.(check bool) (Reg.to_string r) true (Reg.equal r r')
      | None -> Alcotest.fail ("unparseable " ^ Reg.to_string r))
    all

let test_reg_aliases () =
  Alcotest.(check bool) "lr = x30" true (Reg.equal Reg.lr (Reg.x 30));
  Alcotest.(check bool) "fp = x29" true (Reg.equal Reg.fp (Reg.x 29));
  Alcotest.(check bool) "cr = x28" true (Reg.equal Reg.cr (Reg.x 28));
  Alcotest.(check bool) "shadow = x18" true (Reg.equal Reg.shadow (Reg.x 18));
  Alcotest.(check bool) "parse lr" true (Reg.of_string "LR" = Some Reg.lr);
  Alcotest.(check bool) "reject x31" true (Reg.of_string "x31" = None);
  Alcotest.check_raises "x 31 invalid" (Invalid_argument "Reg.x") (fun () -> ignore (Reg.x 31))

let test_callee_saved () =
  Alcotest.(check bool) "x19 saved" true (Reg.is_callee_saved (Reg.x 19));
  Alcotest.(check bool) "x28 saved" true (Reg.is_callee_saved Reg.cr);
  Alcotest.(check bool) "x18 not saved" false (Reg.is_callee_saved Reg.shadow);
  Alcotest.(check bool) "x0 not saved" false (Reg.is_callee_saved (Reg.x 0));
  Alcotest.(check bool) "sp saved" true (Reg.is_callee_saved Reg.SP)

(* --- Cond ------------------------------------------------------------------- *)

let all_conds = Cond.[ EQ; NE; LT; LE; GT; GE; HS; LO ]

let test_cond_negate_involution () =
  List.iter
    (fun c ->
      Alcotest.(check string) "negate twice" (Cond.to_string c)
        (Cond.to_string (Cond.negate (Cond.negate c))))
    all_conds

let test_cond_string_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Cond.to_string c) true (Cond.of_string (Cond.to_string c) = Some c))
    all_conds

let prop_cond_semantics =
  qtest "flags agree with Int64 comparisons" 500
    QCheck2.Gen.(tup2 full64 full64)
    (fun (a, b) ->
      let f = Cond.of_compare a b in
      Cond.holds Cond.EQ f = (Int64.equal a b)
      && Cond.holds Cond.NE f = (not (Int64.equal a b))
      && Cond.holds Cond.LT f = (Int64.compare a b < 0)
      && Cond.holds Cond.GE f = (Int64.compare a b >= 0)
      && Cond.holds Cond.GT f = (Int64.compare a b > 0)
      && Cond.holds Cond.LE f = (Int64.compare a b <= 0)
      && Cond.holds Cond.HS f = (Int64.unsigned_compare a b >= 0)
      && Cond.holds Cond.LO f = (Int64.unsigned_compare a b < 0))

let test_cond_negation_semantics () =
  let f = Cond.of_compare 3L 7L in
  List.iter
    (fun c ->
      Alcotest.(check bool) "negation flips" (Cond.holds c f) (not (Cond.holds (Cond.negate c) f)))
    all_conds

(* --- Instr ------------------------------------------------------------------- *)

let instr_gen =
  let open QCheck2.Gen in
  let reg = map Reg.x (int_range 0 30) in
  let operand = oneof [ map (fun r -> Instr.Reg r) reg; map (fun i -> Instr.Imm (Int64.of_int i)) (int_range (-4096) 4096) ] in
  let index = oneofl [ Instr.Offset; Instr.Pre; Instr.Post ] in
  let mem = map3 (fun base offset index -> { Instr.base; offset; index }) reg (int_range (-256) 256) index in
  let label = oneofl [ "foo"; "bar"; ".L1" ] in
  let cond = oneofl all_conds in
  oneof
    [
      map3 (fun a b c -> Instr.Add (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Sub (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Mul (a, b, c)) reg reg reg;
      map3 (fun a b c -> Instr.Udiv (a, b, c)) reg reg reg;
      map3 (fun a b c -> Instr.And_ (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Orr (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Eor (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Lsl_ (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Lsr_ (a, b, c)) reg reg operand;
      map2 (fun a b -> Instr.Mov (a, b)) reg operand;
      map2 (fun a b -> Instr.Cmp (a, b)) reg operand;
      map2 (fun a b -> Instr.Adr (a, b)) reg label;
      map2 (fun a b -> Instr.Ldr (a, b)) reg mem;
      map2 (fun a b -> Instr.Str (a, b)) reg mem;
      map2 (fun a b -> Instr.Ldrb (a, b)) reg mem;
      map2 (fun a b -> Instr.Strb (a, b)) reg mem;
      map3 (fun a b c -> Instr.Ldp (a, b, c)) reg reg mem;
      map3 (fun a b c -> Instr.Stp (a, b, c)) reg reg mem;
      map (fun l -> Instr.B l) label;
      map2 (fun c l -> Instr.Bcond (c, l)) cond label;
      map2 (fun r l -> Instr.Cbz (r, l)) reg label;
      map2 (fun r l -> Instr.Cbnz (r, l)) reg label;
      map (fun l -> Instr.Bl l) label;
      map (fun r -> Instr.Blr r) reg;
      map (fun r -> Instr.Br r) reg;
      return (Instr.Ret Reg.lr);
      return Instr.Retaa;
      map2 (fun a b -> Instr.Pacia (a, b)) reg reg;
      map2 (fun a b -> Instr.Autia (a, b)) reg reg;
      return Instr.Paciasp;
      return Instr.Autiasp;
      map (fun r -> Instr.Xpaci r) reg;
      map3 (fun a b c -> Instr.Pacga (a, b, c)) reg reg reg;
      map (fun n -> Instr.Svc n) (int_range 0 9);
      return Instr.Nop;
      return Instr.Hlt;
      map (fun l -> Instr.Hook l) label;
    ]

let prop_asm_roundtrip =
  qtest "print/parse instruction roundtrip" 1000 instr_gen (fun ins ->
      Asm.parse_instr (Instr.to_string ins) = ins)

let test_cycles_model () =
  Alcotest.(check int) "alu" 1 (Instr.cycles (Instr.Nop));
  Alcotest.(check int) "load" 4 (Instr.cycles (Instr.Ldr (Reg.x 0, { Instr.base = Reg.SP; offset = 0; index = Instr.Offset })));
  Alcotest.(check int) "pair" 5 (Instr.cycles (Instr.Ldp (Reg.x 0, Reg.x 1, { Instr.base = Reg.SP; offset = 0; index = Instr.Offset })));
  Alcotest.(check int) "pac" 3 (Instr.cycles Instr.Paciasp);
  Alcotest.(check int) "retaa" 5 (Instr.cycles Instr.Retaa);
  Alcotest.(check int) "hook free" 0 (Instr.cycles (Instr.Hook "h"));
  Alcotest.(check int) "svc" 100 (Instr.cycles (Instr.Svc 0))

let test_reads_label () =
  Alcotest.(check (option string)) "bl" (Some "f") (Instr.reads_label (Instr.Bl "f"));
  Alcotest.(check (option string)) "adr" (Some "d") (Instr.reads_label (Instr.Adr (Reg.x 0, "d")));
  Alcotest.(check (option string)) "ret" None (Instr.reads_label (Instr.Ret Reg.lr))

(* --- Encode ----------------------------------------------------------------------- *)

module Encode = Pacstack_isa.Encode

let prop_encode_roundtrip =
  (* pair transfers with unaligned offsets are legitimately rejected;
     everything encodable must roundtrip exactly *)
  qtest "encode/decode roundtrip" 800 instr_gen (fun ins ->
      match Encode.encode [ ins ] with
      | words, pools -> Encode.decode words.(0) pools = ins
      | exception Encode.Unencodable _ -> (
        match ins with
        | Instr.Ldp (_, _, { Instr.offset; _ }) | Instr.Stp (_, _, { Instr.offset; _ }) ->
          offset land 7 <> 0 || offset < -256 || offset > 248
        | _ -> false))

(* Valid-operand generator: every operand inside the documented encoding
   limits (single-transfer offsets fit 12 signed bits, pair offsets are
   8-aligned in 6 signed scaled bits, svc fits 8 bits), registers
   including SP and XZR as bases. Under this generator [encode] must
   never reject, so the roundtrip property has no escape hatch. *)
let valid_instr_gen =
  let open QCheck2.Gen in
  let reg = map Reg.x (int_range 0 30) in
  let any_reg = oneof [ reg; oneofl [ Reg.SP; Reg.XZR ] ] in
  let operand =
    oneof [ map (fun r -> Instr.Reg r) reg; map (fun i -> Instr.Imm i) full64 ]
  in
  let index = oneofl [ Instr.Offset; Instr.Pre; Instr.Post ] in
  let mem =
    map3
      (fun base offset index -> { Instr.base; offset; index })
      any_reg (int_range (-2048) 2047) index
  in
  let pair_mem =
    map3
      (fun base k index -> { Instr.base; offset = 8 * k; index })
      any_reg (int_range (-32) 31) index
  in
  let label = oneofl [ "foo"; "bar"; ".L1"; "a_long_symbol_name" ] in
  let cond = oneofl all_conds in
  oneof
    [
      map3 (fun a b c -> Instr.Add (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Sub (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Mul (a, b, c)) reg reg reg;
      map3 (fun a b c -> Instr.Udiv (a, b, c)) reg reg reg;
      map3 (fun a b c -> Instr.And_ (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Orr (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Eor (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Lsl_ (a, b, c)) reg reg operand;
      map3 (fun a b c -> Instr.Lsr_ (a, b, c)) reg reg operand;
      map2 (fun a b -> Instr.Mov (a, b)) reg operand;
      map2 (fun a b -> Instr.Cmp (a, b)) reg operand;
      map2 (fun a b -> Instr.Adr (a, b)) reg label;
      map2 (fun a b -> Instr.Ldr (a, b)) reg mem;
      map2 (fun a b -> Instr.Str (a, b)) reg mem;
      map2 (fun a b -> Instr.Ldrb (a, b)) reg mem;
      map2 (fun a b -> Instr.Strb (a, b)) reg mem;
      map3 (fun a b c -> Instr.Ldp (a, b, c)) reg reg pair_mem;
      map3 (fun a b c -> Instr.Stp (a, b, c)) reg reg pair_mem;
      map (fun l -> Instr.B l) label;
      map2 (fun c l -> Instr.Bcond (c, l)) cond label;
      map2 (fun r l -> Instr.Cbz (r, l)) reg label;
      map2 (fun r l -> Instr.Cbnz (r, l)) reg label;
      map (fun l -> Instr.Bl l) label;
      map (fun r -> Instr.Blr r) reg;
      map (fun r -> Instr.Br r) reg;
      return (Instr.Ret Reg.lr);
      return Instr.Retaa;
      map2 (fun a b -> Instr.Pacia (a, b)) reg any_reg;
      map2 (fun a b -> Instr.Autia (a, b)) reg any_reg;
      return Instr.Paciasp;
      return Instr.Autiasp;
      map (fun r -> Instr.Xpaci r) reg;
      map3 (fun a b c -> Instr.Pacga (a, b, c)) reg reg reg;
      map (fun n -> Instr.Svc n) (int_range 0 255);
      return Instr.Nop;
      return Instr.Hlt;
      map (fun l -> Instr.Hook l) label;
    ]

let prop_encode_roundtrip_valid =
  qtest "encode/decode roundtrip, valid operands" 2000 valid_instr_gen (fun ins ->
      let words, pools = Encode.encode [ ins ] in
      Encode.decode words.(0) pools = ins)

(* One instance of every constructor with extreme-but-legal operands,
   encoded as one sequence: deterministic coverage of the whole ISA,
   independent of generator luck. *)
let test_encode_all_constructors () =
  let m = { Instr.base = Reg.SP; offset = 2047; index = Instr.Offset } in
  let m' = { Instr.base = Reg.x 30; offset = -2048; index = Instr.Pre } in
  let pm = { Instr.base = Reg.SP; offset = -256; index = Instr.Post } in
  let pm' = { Instr.base = Reg.x 0; offset = 248; index = Instr.Offset } in
  let every =
    [
      Instr.Add (Reg.x 0, Reg.x 30, Instr.Imm Int64.min_int);
      Instr.Sub (Reg.x 1, Reg.x 2, Instr.Reg (Reg.x 3));
      Instr.Mul (Reg.x 4, Reg.x 5, Reg.x 6);
      Instr.Udiv (Reg.x 7, Reg.x 8, Reg.x 9);
      Instr.And_ (Reg.x 10, Reg.x 11, Instr.Imm (-1L));
      Instr.Orr (Reg.x 12, Reg.x 13, Instr.Reg Reg.XZR);
      Instr.Eor (Reg.x 14, Reg.x 15, Instr.Imm Int64.max_int);
      Instr.Lsl_ (Reg.x 16, Reg.x 17, Instr.Imm 63L);
      Instr.Lsr_ (Reg.x 18, Reg.x 19, Instr.Reg (Reg.x 20));
      Instr.Mov (Reg.x 21, Instr.Imm 0x123456789abcdefL);
      Instr.Cmp (Reg.x 22, Instr.Imm 0L);
      Instr.Adr (Reg.x 23, "sym");
      Instr.Ldr (Reg.x 24, m);
      Instr.Str (Reg.x 25, m');
      Instr.Ldrb (Reg.x 26, m);
      Instr.Strb (Reg.x 27, m');
      Instr.Ldp (Reg.x 28, Reg.x 29, pm);
      Instr.Stp (Reg.x 0, Reg.x 1, pm');
      Instr.B "sym";
      Instr.Bcond (Cond.LO, "sym");
      Instr.Cbz (Reg.x 2, "sym");
      Instr.Cbnz (Reg.x 3, "other");
      Instr.Bl "other";
      Instr.Blr (Reg.x 4);
      Instr.Br (Reg.x 5);
      Instr.Ret (Reg.x 30);
      Instr.Retaa;
      Instr.Pacia (Reg.x 6, Reg.SP);
      Instr.Autia (Reg.x 7, Reg.SP);
      Instr.Paciasp;
      Instr.Autiasp;
      Instr.Xpaci (Reg.x 8);
      Instr.Pacga (Reg.x 9, Reg.x 10, Reg.x 11);
      Instr.Svc 255;
      Instr.Nop;
      Instr.Hlt;
      Instr.Hook "h";
    ]
  in
  let words, pools = Encode.encode every in
  Alcotest.(check int) "one word each" (List.length every) (Array.length words);
  Alcotest.(check bool) "decode_all inverts every constructor" true
    (Encode.decode_all words pools = every)

let test_encode_sequence () =
  let instrs =
    [
      Instr.Mov (Reg.x 0, Instr.Imm 0x123456789abcdefL);
      Instr.Add (Reg.x 1, Reg.x 0, Instr.Imm 5L);
      Instr.Stp (Reg.fp, Reg.lr, { Instr.base = Reg.SP; offset = -16; index = Instr.Pre });
      Instr.Bl "callee";
      Instr.Ldp (Reg.fp, Reg.lr, { Instr.base = Reg.SP; offset = 16; index = Instr.Post });
      Instr.Ret Reg.lr;
    ]
  in
  let words, pools = Encode.encode instrs in
  Alcotest.(check int) "one word per instruction" (List.length instrs) (Array.length words);
  Alcotest.(check bool) "decode_all inverts" true (Encode.decode_all words pools = instrs)

let test_encode_pools_interned () =
  let instrs =
    [ Instr.Mov (Reg.x 0, Instr.Imm 7L); Instr.Mov (Reg.x 1, Instr.Imm 7L); Instr.B "l"; Instr.Bl "l" ]
  in
  let _, pools = Encode.encode instrs in
  Alcotest.(check int) "constant interned" 1 (Array.length pools.Encode.constants);
  Alcotest.(check int) "symbol interned" 1 (Array.length pools.Encode.symbols)

let test_encode_limits () =
  let reject i =
    match Encode.encode [ i ] with
    | exception Encode.Unencodable _ -> ()
    | _ -> Alcotest.fail "expected Unencodable"
  in
  reject (Instr.Ldr (Reg.x 0, { Instr.base = Reg.SP; offset = 5000; index = Instr.Offset }));
  reject (Instr.Ldp (Reg.x 0, Reg.x 1, { Instr.base = Reg.SP; offset = 12; index = Instr.Offset }));
  reject (Instr.Stp (Reg.x 0, Reg.x 1, { Instr.base = Reg.SP; offset = 512; index = Instr.Offset }));
  reject (Instr.Svc 300)

let test_disassemble () =
  let instrs = [ Instr.Paciasp; Instr.Nop; Instr.Retaa ] in
  let words, pools = Encode.encode instrs in
  Alcotest.(check string) "disassembly" "paciasp\nnop\nretaa" (Encode.disassemble words pools)

(* --- Program / Asm -------------------------------------------------------------- *)

let simple_src =
  ".data buf 64\n.entry main\n.func main\n  mov x0, #0\nloop:\n  add x0, x0, #1\n  cmp x0, #3\n  b.lt loop\n  hlt\n.endfunc\n"

let test_asm_parse_program () =
  let p = Asm.parse simple_src in
  Alcotest.(check string) "entry" "main" p.Program.entry;
  Alcotest.(check int) "one data object" 1 (List.length p.Program.data);
  Alcotest.(check int) "5 instructions" 5 (Program.instruction_count p)

let test_asm_program_roundtrip () =
  let p = Asm.parse simple_src in
  let p2 = Asm.parse (Asm.print p) in
  Alcotest.(check string) "same printed form" (Asm.print p) (Asm.print p2)

let test_asm_comments () =
  let p = Asm.parse ".entry main\n.func main ; comment\n  nop // trailing\n  hlt\n.endfunc\n" in
  Alcotest.(check int) "comments stripped" 2 (Program.instruction_count p)

let expect_parse_error src =
  match Asm.parse src with
  | exception Asm.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_asm_errors () =
  expect_parse_error ".func f\n nop\n.endfunc\n";  (* no entry *)
  expect_parse_error ".entry f\n.func f\n bogus x0\n.endfunc\n";
  expect_parse_error ".entry f\n.func f\n nop\n";  (* missing endfunc *)
  expect_parse_error ".entry f\nnop\n";  (* instruction outside func *)
  expect_parse_error ".entry f\n.func f\n mov x0, #zz\n.endfunc\n"

let test_program_validation () =
  let f name body = Program.func name (List.map (fun i -> Program.Ins i) body) in
  Alcotest.check_raises "missing entry"
    (Invalid_argument "Program: entry symbol nope undefined") (fun () ->
      ignore (Program.make ~entry:"nope" [ f "main" [ Instr.Hlt ] ]));
  Alcotest.check_raises "duplicate symbol"
    (Invalid_argument "Program: duplicate function symbol main") (fun () ->
      ignore (Program.make ~entry:"main" [ f "main" [ Instr.Hlt ]; f "main" [ Instr.Nop ] ]));
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Program: unknown label nowhere in main") (fun () ->
      ignore (Program.make ~entry:"main" [ f "main" [ Instr.B "nowhere" ] ]));
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Program: duplicate label l in main") (fun () ->
      ignore
        (Program.make ~entry:"main"
           [ Program.func "main" [ Program.Lbl "l"; Program.Lbl "l"; Program.Ins Instr.Hlt ] ]));
  Alcotest.check_raises "bad data size"
    (Invalid_argument "Program: data d has size 0") (fun () ->
      ignore
        (Program.make ~entry:"main" ~data:[ { Program.dname = "d"; size = 0 } ]
           [ f "main" [ Instr.Hlt ] ]))

let test_program_cross_function_symbols () =
  (* labels can reference other functions and data *)
  let p =
    Program.make ~entry:"main"
      ~data:[ { Program.dname = "buf"; size = 8 } ]
      [
        Program.func "main"
          [ Program.Ins (Instr.Adr (Reg.x 0, "buf")); Program.Ins (Instr.Bl "helper");
            Program.Ins Instr.Hlt ];
        Program.func "helper" [ Program.Ins (Instr.Ret Reg.lr) ];
      ]
  in
  Alcotest.(check (list string)) "symbols" [ "main"; "helper"; "buf" ] (Program.symbols p)

(* --- Objfile / Link ---------------------------------------------------------------- *)

module Objfile = Pacstack_isa.Objfile
module Link = Pacstack_isa.Link

(* the app unit references [helper] without defining it, so it is built
   directly (Asm.parse would reject the unresolved symbol) *)
let app_unit =
  {
    Objfile.funcs =
      [
        Program.func "main"
          (List.map
             (fun i -> Program.Ins i)
             [
               Instr.Adr (Reg.x 1, "shared");
               Instr.Bl "helper";
               Instr.Mov (Reg.x 0, Instr.Imm 0L);
               Instr.Hlt;
             ]);
      ];
    data = [ { Program.dname = "shared"; size = 16 } ];
  }

let lib_unit =
  Objfile.of_program (Asm.parse ".entry helper\n.func helper\n  add x0, x0, #1\n  ret\n.endfunc\n")

let test_objfile_symbols () =
  Alcotest.(check (list string)) "defined" [ "main"; "shared" ] (Objfile.defined_symbols app_unit);
  Alcotest.(check (list string)) "referenced" [ "helper" ]
    (Objfile.referenced_symbols app_unit);
  Alcotest.(check (list string)) "lib has no refs" [] (Objfile.referenced_symbols lib_unit)

let test_objfile_roundtrip () =
  List.iter
    (fun u ->
      let u' = Objfile.read (Objfile.write u) in
      Alcotest.(check (list string)) "symbols preserved" (Objfile.defined_symbols u)
        (Objfile.defined_symbols u');
      let instrs_of (x : Objfile.t) =
        List.concat_map Program.instructions x.Objfile.funcs
      in
      Alcotest.(check bool) "instructions preserved" true (instrs_of u = instrs_of u'))
    [ app_unit; lib_unit ]

let test_objfile_corrupt () =
  let reject s =
    match Objfile.read s with
    | exception Objfile.Corrupt _ -> ()
    | _ -> Alcotest.fail "expected Corrupt"
  in
  reject "";
  reject "NOPE";
  reject (String.sub (Objfile.write app_unit) 0 10);
  reject (Objfile.write app_unit ^ "x")

let test_link_success () =
  let p = Link.link [ app_unit; lib_unit ] in
  Alcotest.(check string) "entry" "main" p.Program.entry;
  Alcotest.(check int) "both units linked" 2 (List.length p.Program.funcs)

let test_link_errors () =
  (match Link.link [ app_unit ] with
  | exception Link.Link_error (Link.Undefined_symbols [ "helper" ]) -> ()
  | _ -> Alcotest.fail "expected undefined helper");
  (match Link.link [ lib_unit; lib_unit ] with
  | exception Link.Link_error (Link.Duplicate_symbol ("helper", 0, 1)) -> ()
  | _ -> Alcotest.fail "expected duplicate");
  (match Link.link [ lib_unit ] with
  | exception Link.Link_error (Link.Missing_entry "main") -> ()
  | _ -> Alcotest.fail "expected missing entry");
  Alcotest.(check (list string)) "undefined listing" [ "helper" ]
    (Link.undefined_symbols [ app_unit ])

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [
          Alcotest.test_case "string roundtrip" `Quick test_reg_roundtrip;
          Alcotest.test_case "aliases" `Quick test_reg_aliases;
          Alcotest.test_case "callee-saved" `Quick test_callee_saved;
        ] );
      ( "cond",
        [
          Alcotest.test_case "negate involution" `Quick test_cond_negate_involution;
          Alcotest.test_case "string roundtrip" `Quick test_cond_string_roundtrip;
          prop_cond_semantics;
          Alcotest.test_case "negation semantics" `Quick test_cond_negation_semantics;
        ] );
      ( "instr",
        [
          prop_asm_roundtrip;
          Alcotest.test_case "cycle model" `Quick test_cycles_model;
          Alcotest.test_case "reads_label" `Quick test_reads_label;
        ] );
      ( "encode",
        [
          prop_encode_roundtrip;
          prop_encode_roundtrip_valid;
          Alcotest.test_case "every constructor" `Quick test_encode_all_constructors;
          Alcotest.test_case "sequence" `Quick test_encode_sequence;
          Alcotest.test_case "pool interning" `Quick test_encode_pools_interned;
          Alcotest.test_case "limits" `Quick test_encode_limits;
          Alcotest.test_case "disassembly" `Quick test_disassemble;
        ] );
      ( "objfile+link",
        [
          Alcotest.test_case "symbols" `Quick test_objfile_symbols;
          Alcotest.test_case "roundtrip" `Quick test_objfile_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_objfile_corrupt;
          Alcotest.test_case "link" `Quick test_link_success;
          Alcotest.test_case "link errors" `Quick test_link_errors;
        ] );
      ( "asm+program",
        [
          Alcotest.test_case "parse program" `Quick test_asm_parse_program;
          Alcotest.test_case "program roundtrip" `Quick test_asm_program_roundtrip;
          Alcotest.test_case "comments" `Quick test_asm_comments;
          Alcotest.test_case "parse errors" `Quick test_asm_errors;
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "cross-function symbols" `Quick test_program_cross_function_symbols;
        ] );
    ]
