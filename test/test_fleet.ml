(* Tests for lib/fleet: deterministic heap drain order, arrival-process
   statistics, constant-size latency folding, and the headline contract —
   an N-worker fleet campaign is bit-identical to the 1-worker run, table
   and traces included, at more than one arrival mix. *)

module Scheme = Pacstack_harden.Scheme
module Campaign = Pacstack_campaign.Campaign
module Json = Pacstack_campaign.Json
module Stats = Pacstack_util.Stats
module Obs = Pacstack_obs.Obs
module Scheduler = Pacstack_fleet.Scheduler
module Arrival = Pacstack_fleet.Arrival
module Latency = Pacstack_fleet.Latency
module Connection = Pacstack_fleet.Connection
module Fleet = Pacstack_fleet.Fleet
module Fjson = Pacstack_fleet.Json

let qtest name count gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* --- scheduler ------------------------------------------------------------ *)

let test_heap_basics () =
  let h = Scheduler.create () in
  Alcotest.(check bool) "empty" true (Scheduler.is_empty h);
  Alcotest.(check bool) "pop empty" true (Scheduler.pop h = None);
  Scheduler.push h ~time:5 ~tie:1 "b";
  Scheduler.push h ~time:5 ~tie:0 "a";
  Scheduler.push h ~time:3 ~tie:9 "c";
  Alcotest.(check (option int)) "peek" (Some 3) (Scheduler.peek_time h);
  Alcotest.(check int) "length" 3 (Scheduler.length h);
  Alcotest.(check bool) "min time first" true (Scheduler.pop h = Some (3, 9, "c"));
  Alcotest.(check bool) "tie breaks" true (Scheduler.pop h = Some (5, 0, "a"));
  Alcotest.(check bool) "last" true (Scheduler.pop h = Some (5, 1, "b"));
  Alcotest.(check bool) "drained" true (Scheduler.pop h = None)

(* Drain order is the stable sort of the push sequence by (time, tie):
   the heap is not allowed to reorder same-key entries. *)
let heap_drain_is_stable_sort =
  qtest "heap drains as stable (time, tie) sort" 200
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 20) (int_range 0 3)))
    (fun pushes ->
      let h = Scheduler.create () in
      List.iteri (fun i (time, tie) -> Scheduler.push h ~time ~tie i) pushes;
      let rec drain acc = match Scheduler.pop h with
        | None -> List.rev acc
        | Some (time, tie, v) -> drain ((time, tie, v) :: acc)
      in
      let drained = drain [] in
      let expected =
        List.stable_sort
          (fun (t1, k1, _) (t2, k2, _) -> compare (t1, k1) (t2, k2))
          (List.mapi (fun i (time, tie) -> (time, tie, i)) pushes)
      in
      drained = expected)

(* --- arrivals ------------------------------------------------------------- *)

let count_arrivals arrival ~seed ~conn ~until_s =
  let g = Arrival.start arrival ~seed ~conn in
  let rec go n = match Arrival.next g ~until_s with None -> n | Some _ -> go (n + 1) in
  go 0

let test_arrival_mean_rates () =
  let horizon = 2000.0 in
  List.iter
    (fun (name, arrival) ->
      let rate = Arrival.mean_rate arrival.Arrival.process in
      let seen =
        float_of_int (count_arrivals arrival ~seed:11L ~conn:0 ~until_s:horizon) /. horizon
      in
      let tolerance = if name = "bursty" then 0.15 else 0.05 in
      if Float.abs (seen -. rate) /. rate > tolerance then
        Alcotest.failf "%s: empirical rate %.3f vs declared %.3f" name seen rate)
    Arrival.presets

let test_arrival_deterministic_and_distinct () =
  let arrival = List.assoc "heavy" Arrival.presets in
  let stream conn =
    let g = Arrival.start arrival ~seed:5L ~conn in
    let rec go acc =
      match Arrival.next g ~until_s:50.0 with
      | None -> List.rev acc
      | Some r -> go ((r.Arrival.at_s, r.records, r.service_jitter) :: acc)
    in
    go []
  in
  Alcotest.(check bool) "same (seed, conn) replays" true (stream 3 = stream 3);
  Alcotest.(check bool) "conns draw distinct streams" true (stream 3 <> stream 4);
  List.iter
    (fun (at_s, records, jitter) ->
      Alcotest.(check bool) "arrival inside horizon" true (at_s >= 0.0 && at_s < 50.0);
      Alcotest.(check bool) "records positive" true (records > 0);
      Alcotest.(check bool) "jitter in [1, 1.05)" true (jitter >= 1.0 && jitter < 1.05))
    (stream 3)

let test_arrival_times_nondecreasing () =
  List.iter
    (fun (_, arrival) ->
      let g = Arrival.start arrival ~seed:2L ~conn:1 in
      let rec go last =
        match Arrival.next g ~until_s:100.0 with
        | None -> ()
        | Some r ->
          if r.Arrival.at_s < last then Alcotest.failf "time went backwards";
          go r.Arrival.at_s
      in
      go 0.0)
    Arrival.presets

let test_heavy_tail_classes () =
  (* the whole point of the heavy mix: few distinct classes, tail present *)
  let g = Arrival.start (List.assoc "heavy" Arrival.presets) ~seed:3L ~conn:0 in
  let classes = Hashtbl.create 16 in
  let rec go n =
    if n = 0 then ()
    else
      match Arrival.next g ~until_s:1e9 with
      | None -> ()
      | Some r ->
        Hashtbl.replace classes r.Arrival.records ();
        go (n - 1)
  in
  go 5000;
  let n = Hashtbl.length classes in
  Alcotest.(check bool) "tail classes bounded" true (n <= 12);
  Alcotest.(check bool) "tail classes present" true (Hashtbl.mem classes 576)

(* --- latency sketch ------------------------------------------------------- *)

let test_latency_vs_exact_percentile () =
  let rng = Pacstack_util.Rng.create 41L in
  let samples =
    List.init 4000 (fun _ -> 1e4 *. exp (4.0 *. Pacstack_util.Rng.float rng))
  in
  let t = List.fold_left Latency.record Latency.empty samples in
  Alcotest.(check int) "count" 4000 t.Latency.count;
  List.iter
    (fun p ->
      let approx = Latency.percentile t p in
      let exact = Stats.percentile samples p in
      (* one geometric bucket is ~11% wide; the sketch must stay within *)
      if Float.abs (approx -. exact) /. exact > 0.12 then
        Alcotest.failf "p%.1f: sketch %.0f vs exact %.0f" p approx exact)
    Fleet.quantiles

let test_latency_merge_and_bounds () =
  let xs = List.init 500 (fun i -> 500.0 *. float_of_int (i + 1)) in
  let l, r = (List.filteri (fun i _ -> i mod 2 = 0) xs, List.filteri (fun i _ -> i mod 2 = 1) xs) in
  let whole = List.fold_left Latency.record Latency.empty xs in
  let halves =
    Latency.merge
      (List.fold_left Latency.record Latency.empty l)
      (List.fold_left Latency.record Latency.empty r)
  in
  Alcotest.(check bool) "merge = fold" true (whole = halves);
  Alcotest.(check (float 1e-9)) "min exact" 500.0 whole.Latency.min;
  Alcotest.(check (float 1e-9)) "max exact" 250000.0 whole.Latency.max;
  Alcotest.(check bool) "p0 clamps to min" true (Latency.percentile whole 0.0 >= 500.0);
  Alcotest.(check bool) "p100 clamps to max" true (Latency.percentile whole 100.0 <= 250000.0)

let test_latency_json_roundtrip () =
  let rng = Pacstack_util.Rng.create 4242L in
  let t =
    List.fold_left Latency.record Latency.empty
      (List.init 300 (fun _ -> 1e3 +. (1e8 *. Pacstack_util.Rng.float rng)))
  in
  List.iter
    (fun t ->
      match Json.parse (Json.to_string (Latency.to_json t)) with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok json -> (
        match Latency.of_json json with
        | None -> Alcotest.fail "decode failed"
        | Some t' ->
          Alcotest.(check int) "count" t.Latency.count t'.Latency.count;
          Alcotest.(check bool) "counts equal" true (t.Latency.counts = t'.Latency.counts);
          Alcotest.(check bool) "sum equal" true (t.Latency.sum = t'.Latency.sum);
          if t.Latency.count > 0 then begin
            Alcotest.(check bool) "min equal" true (t.Latency.min = t'.Latency.min);
            Alcotest.(check bool) "max equal" true (t.Latency.max = t'.Latency.max)
          end))
    [ t; Latency.empty ]

(* --- service-cost memo ---------------------------------------------------- *)

let test_costs_memoized_and_ordered () =
  let costs = Connection.Costs.create ~scheme:Scheme.pacstack in
  let a = Connection.Costs.request costs ~records:72 in
  let b = Connection.Costs.request costs ~records:72 in
  Alcotest.(check bool) "memo hit returns same cost" true (a = b);
  Alcotest.(check int) "one class calibrated" 1 (Connection.Costs.distinct costs);
  let big = Connection.Costs.request costs ~records:144 in
  Alcotest.(check bool) "bigger request costs more" true (big.Connection.cycles > a.Connection.cycles);
  Alcotest.(check bool) "pacstack adds memory traffic" true
    (Connection.Costs.extra_mem costs ~records:72 > 0.0);
  let base = Connection.Costs.create ~scheme:Scheme.unprotected in
  Alcotest.(check (float 1e-9)) "unprotected has no extra" 0.0
    (Connection.Costs.extra_mem base ~records:72)

(* --- fleet determinism ---------------------------------------------------- *)

let small_config arrival_name =
  {
    Fleet.default with
    connections = 48;
    duration_s = 0.6;
    cells = 4;
    arrival = List.assoc arrival_name Arrival.presets;
    schemes = [ Scheme.unprotected; Scheme.pacstack ];
    seed = 99L;
  }

let render_table cfg rows = Json.to_string (Fjson.table_to_json cfg rows)

let test_workers_bit_identical () =
  List.iter
    (fun arrival_name ->
      let cfg = small_config arrival_name in
      let t1 = Fleet.tabulate cfg (Campaign.run ~workers:1 (Fleet.plan cfg)) in
      let t4 = Fleet.tabulate cfg (Campaign.run ~workers:4 (Fleet.plan cfg)) in
      Alcotest.(check string)
        (arrival_name ^ ": 4-worker table identical")
        (render_table cfg t1) (render_table cfg t4))
    [ "poisson"; "heavy" ]

let test_workers_traces_bit_identical () =
  let cfg = small_config "bursty" in
  let traced workers =
    Obs.reset ();
    Obs.enable ();
    ignore (Campaign.run ~workers (Fleet.plan cfg));
    let lines = Obs.Sink.lines () in
    Obs.disable ();
    Obs.reset ();
    lines
  in
  let l1 = traced 1 and l4 = traced 4 in
  Alcotest.(check bool) "some export" true (List.length l1 > 1);
  Alcotest.(check (list string)) "sink export worker-independent" l1 l4

let test_cells_cover_connections () =
  let cfg = small_config "poisson" in
  (* every connection index is simulated exactly once across cells: the
     per-cell offered counts sum to the full open-loop offered load *)
  let per_cell =
    List.init cfg.Fleet.cells (fun cell ->
        (Fleet.run_cell cfg ~scheme:Scheme.unprotected ~cell ()).Fleet.offered)
  in
  let whole =
    List.fold_left (fun acc c -> acc + count_arrivals cfg.Fleet.arrival ~seed:cfg.Fleet.seed ~conn:c ~until_s:cfg.Fleet.duration_s)
      0
      (List.init cfg.Fleet.connections Fun.id)
  in
  Alcotest.(check int) "offered covers every connection" whole (List.fold_left ( + ) 0 per_cell)

let test_fleet_sanity () =
  let cfg = small_config "poisson" in
  let rows = Fleet.tabulate cfg (Campaign.run (Fleet.plan cfg)) in
  Alcotest.(check int) "one row per scheme" (List.length cfg.Fleet.schemes) (List.length rows);
  List.iter
    (fun (r : Fleet.stats) ->
      Alcotest.(check int) "drain-all: completed = offered" r.offered r.completed;
      Alcotest.(check int) "latency count = completed" r.completed r.latency.Latency.count;
      Alcotest.(check bool) "offered something" true (r.offered > 0);
      Alcotest.(check bool) "cores were busy" true (r.busy_cycles > 0.0);
      Alcotest.(check bool) "few size classes" true (r.size_classes <= 12);
      Alcotest.(check bool) "utilisation positive" true (Fleet.utilisation cfg r > 0.0))
    rows;
  let find scheme = List.find (fun (r : Fleet.stats) -> Scheme.equal r.Fleet.scheme scheme) rows in
  let base = find Scheme.unprotected and pac = find Scheme.pacstack in
  Alcotest.(check bool) "pacstack requests are slower" true
    (Latency.mean pac.Fleet.latency > Latency.mean base.Fleet.latency)

let test_stats_json_roundtrip () =
  let cfg = small_config "heavy" in
  let stats = Fleet.run_cell cfg ~scheme:Scheme.pacstack ~cell:1 () in
  match Json.parse (Json.to_string (Fjson.stats_to_json stats)) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok json -> (
    match Fjson.stats_of_json json with
    | None -> Alcotest.fail "decode failed"
    | Some stats' ->
      Alcotest.(check string) "codec round-trips"
        (Json.to_string (Fjson.stats_to_json stats))
        (Json.to_string (Fjson.stats_to_json stats')))

let test_checkpoint_resume_identical () =
  let cfg = small_config "poisson" in
  let path = Filename.temp_file "pacstack_fleet" ".ck" in
  let partial =
    Campaign.run ~workers:1 ~checkpoint:(path, Fjson.checkpoint_codec) (Fleet.plan cfg)
  in
  let resumed =
    Campaign.run ~workers:4 ~checkpoint:(path, Fjson.checkpoint_codec) (Fleet.plan cfg)
  in
  Sys.remove path;
  Alcotest.(check int) "all shards restored" (Array.length resumed.Campaign.results)
    resumed.Campaign.resumed;
  Alcotest.(check string) "resumed table identical"
    (render_table cfg (Fleet.tabulate cfg partial))
    (render_table cfg (Fleet.tabulate cfg resumed))

let test_validate_rejects () =
  let reject cfg = match Fleet.validate cfg with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  reject { Fleet.default with connections = 0 };
  reject { Fleet.default with duration_s = 0.0 };
  reject { Fleet.default with cells = 0 };
  reject { Fleet.default with cores = 0 };
  reject { Fleet.default with schemes = [] };
  reject { Fleet.default with connections = 4; cells = 8 }

let () =
  Alcotest.run "fleet"
    [
      ( "scheduler",
        [
          Alcotest.test_case "basics" `Quick test_heap_basics;
          heap_drain_is_stable_sort;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "mean rates" `Quick test_arrival_mean_rates;
          Alcotest.test_case "deterministic per (seed, conn)" `Quick
            test_arrival_deterministic_and_distinct;
          Alcotest.test_case "times nondecreasing" `Quick test_arrival_times_nondecreasing;
          Alcotest.test_case "heavy-tail classes" `Quick test_heavy_tail_classes;
        ] );
      ( "latency",
        [
          Alcotest.test_case "sketch vs exact percentile" `Quick test_latency_vs_exact_percentile;
          Alcotest.test_case "merge and exact bounds" `Quick test_latency_merge_and_bounds;
          Alcotest.test_case "json roundtrip" `Quick test_latency_json_roundtrip;
        ] );
      ( "costs",
        [ Alcotest.test_case "memoized, monotone, extra-mem" `Quick test_costs_memoized_and_ordered ] );
      ( "fleet",
        [
          Alcotest.test_case "1-vs-4 workers bit-identical" `Quick test_workers_bit_identical;
          Alcotest.test_case "1-vs-4 traces bit-identical" `Quick
            test_workers_traces_bit_identical;
          Alcotest.test_case "cells cover the fleet" `Quick test_cells_cover_connections;
          Alcotest.test_case "sanity invariants" `Quick test_fleet_sanity;
          Alcotest.test_case "stats json roundtrip" `Quick test_stats_json_roundtrip;
          Alcotest.test_case "checkpoint resume identical" `Quick
            test_checkpoint_resume_identical;
          Alcotest.test_case "validate rejects bad configs" `Quick test_validate_rejects;
        ] );
    ]
