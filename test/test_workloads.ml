(* Tests for the workload suites: determinism and scheme-independence of
   the SPEC-like kernels, the server model's expected behaviour, and the
   full compatibility matrix. *)

module Scheme = Pacstack_harden.Scheme
module Speclike = Pacstack_workloads.Speclike
module Server = Pacstack_workloads.Server
module Confirm = Pacstack_workloads.Confirm
module Scenarios = Pacstack_workloads.Scenarios
module Compile = Pacstack_minic.Compile
module Machine = Pacstack_machine.Machine

(* --- SPEC-like kernels --------------------------------------------------------- *)

let test_benchmarks_deterministic () =
  List.iter
    (fun b ->
      let m1 = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
      let m2 = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
      Alcotest.(check int64) (b.Speclike.name ^ " checksum stable") m1.Speclike.checksum
        m2.Speclike.checksum;
      Alcotest.(check int) (b.Speclike.name ^ " cycles stable") m1.Speclike.cycles
        m2.Speclike.cycles)
    Speclike.all

let test_schemes_preserve_semantics () =
  List.iter
    (fun b ->
      let base = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
      List.iter
        (fun scheme ->
          let m = Speclike.measure ~scheme Speclike.Rate b in
          Alcotest.(check int64)
            (Printf.sprintf "%s under %s" b.Speclike.name (Scheme.to_string scheme))
            base.Speclike.checksum m.Speclike.checksum)
        Scheme.all)
    Speclike.all

let test_overhead_ordering () =
  (* for every benchmark: 0 <= nomask <= masked, and instrumentation never
     speeds a program up *)
  List.iter
    (fun b ->
      let base = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
      let nomask = Speclike.measure ~scheme:Scheme.pacstack_nomask Speclike.Rate b in
      let masked = Speclike.measure ~scheme:Scheme.pacstack Speclike.Rate b in
      Alcotest.(check bool) (b.Speclike.name ^ " nomask >= baseline") true
        (nomask.Speclike.cycles >= base.Speclike.cycles);
      Alcotest.(check bool) (b.Speclike.name ^ " masked >= nomask") true
        (masked.Speclike.cycles >= nomask.Speclike.cycles))
    Speclike.all

let test_call_density_spectrum () =
  (* gcc (call-heavy) must show strictly more PACStack overhead than lbm
     (no calls in the hot loop) — the Figure 5 shape *)
  let overhead name =
    let b = Option.get (Speclike.find name) in
    let base = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
    Speclike.overhead_pct ~baseline:base (Speclike.measure ~scheme:Scheme.pacstack Speclike.Rate b)
  in
  let gcc = overhead "gcc" and lbm = overhead "lbm" in
  Alcotest.(check bool) (Printf.sprintf "gcc %.2f%% >> lbm %.2f%%" gcc lbm) true
    (gcc > 10.0 *. (lbm +. 0.01))

let test_speed_variant_larger () =
  let b = Option.get (Speclike.find "mcf") in
  let rate = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
  let speed = Speclike.measure ~scheme:Scheme.unprotected Speclike.Speed b in
  Alcotest.(check bool) "speed runs longer" true (speed.Speclike.cycles > 2 * rate.Speclike.cycles)

let test_find () =
  Alcotest.(check bool) "finds perlbench" true (Speclike.find "perlbench" <> None);
  Alcotest.(check bool) "finds leela (C++)" true (Speclike.find "leela" <> None);
  Alcotest.(check bool) "rejects unknown" true (Speclike.find "doom" = None);
  Alcotest.(check int) "eight C benchmarks" 8 (List.length Speclike.all);
  Alcotest.(check int) "three C++ benchmarks" 3 (List.length Speclike.cpp)

let test_cpp_semantics_and_overheads () =
  List.iter
    (fun b ->
      let base = Speclike.measure ~scheme:Scheme.unprotected Speclike.Rate b in
      let masked = Speclike.measure ~scheme:Scheme.pacstack Speclike.Rate b in
      Alcotest.(check int64) (b.Speclike.name ^ " checksum") base.Speclike.checksum
        masked.Speclike.checksum;
      let oh = Speclike.overhead_pct ~baseline:base masked in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.2f%% in the paper's C++ ballpark" b.Speclike.name oh)
        true
        (oh > 0.3 && oh < 5.0))
    Speclike.cpp

(* --- server ----------------------------------------------------------------------- *)

let test_server_overheads () =
  let base4 = Server.measure ~scheme:Scheme.unprotected ~workers:4 ~variants:4 () in
  let pac4 = Server.measure ~scheme:Scheme.pacstack ~workers:4 ~variants:4 () in
  let base8 = Server.measure ~scheme:Scheme.unprotected ~workers:8 ~variants:4 () in
  let pac8 = Server.measure ~scheme:Scheme.pacstack ~workers:8 ~variants:4 () in
  let oh4 = Server.overhead_pct ~baseline:base4 pac4 in
  let oh8 = Server.overhead_pct ~baseline:base8 pac8 in
  Alcotest.(check bool) "4-worker overhead positive" true (oh4 > 1.0 && oh4 < 15.0);
  Alcotest.(check bool) "8 workers contend more" true (oh8 > oh4);
  Alcotest.(check bool) "8 workers still faster overall" true
    (base8.Server.req_per_sec > base4.Server.req_per_sec);
  Alcotest.(check bool) "sigma from request jitter" true (base4.Server.sigma > 0.0)

let test_server_validation () =
  Alcotest.check_raises "too few variants" (Invalid_argument "Server.measure") (fun () ->
      ignore (Server.measure ~scheme:Scheme.unprotected ~workers:4 ~variants:1 ()))

(* --- confirm ---------------------------------------------------------------------- *)

let test_confirm_all_pass () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (t, outcome) ->
          match outcome with
          | Confirm.Pass -> ()
          | Confirm.Fail m ->
            Alcotest.fail
              (Printf.sprintf "%s under %s: %s" t.Confirm.name (Scheme.to_string scheme) m))
        (Confirm.run_all ~scheme))
    Scheme.all

let test_confirm_count () =
  Alcotest.(check int) "eleven tests, as in the paper" 11 (List.length Confirm.all)

(* --- scenarios ---------------------------------------------------------------------- *)

let test_scenarios_compile_everywhere () =
  List.iter
    (fun scheme ->
      List.iter
        (fun prog -> ignore (Compile.compile ~scheme prog))
        [
          Scenarios.listing6 ~rounds:2;
          Scenarios.tail_call_victim;
          Scenarios.sigreturn_victim;
          Scenarios.unwind_victim ~depth:3;
        ])
    Scheme.all

let test_listing6_benign_output () =
  (* unattacked victim: each round prints 3, then a final 0 *)
  let m =
    Machine.load (Compile.compile ~scheme:Scheme.pacstack (Scenarios.listing6 ~rounds:3))
  in
  (match Machine.run ~fuel:1_000_000 m with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "victim failed");
  Alcotest.(check (list int64)) "benign trace" [ 3L; 3L; 3L; 0L ] (Machine.output m)

let () =
  Alcotest.run "workloads"
    [
      ( "speclike",
        [
          Alcotest.test_case "deterministic" `Quick test_benchmarks_deterministic;
          Alcotest.test_case "schemes preserve semantics" `Slow test_schemes_preserve_semantics;
          Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering;
          Alcotest.test_case "call-density spectrum" `Quick test_call_density_spectrum;
          Alcotest.test_case "speed variant" `Quick test_speed_variant_larger;
          Alcotest.test_case "catalogue" `Quick test_find;
          Alcotest.test_case "C++ kernels" `Quick test_cpp_semantics_and_overheads;
        ] );
      ( "server",
        [
          Alcotest.test_case "overheads" `Quick test_server_overheads;
          Alcotest.test_case "validation" `Quick test_server_validation;
        ] );
      ( "confirm",
        [
          Alcotest.test_case "all pass under all schemes" `Slow test_confirm_all_pass;
          Alcotest.test_case "eleven tests" `Quick test_confirm_count;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "compile everywhere" `Quick test_scenarios_compile_everywhere;
          Alcotest.test_case "listing 6 benign trace" `Quick test_listing6_benign_output;
        ] );
    ]
