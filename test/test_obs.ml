(* Tests for lib/obs: the metrics registry, the per-domain ring-buffer
   tracer and its deterministic merge, the JSON-lines sink, the campaign
   progress hooks, and the machine-level counters — including the two
   contracts the bench harness leans on: disabled instrumentation records
   nothing, and enabled instrumentation does not perturb execution. *)

module Obs = Pacstack_obs.Obs
module Json = Pacstack_campaign.Json
module Plan = Pacstack_campaign.Plan
module Shard = Pacstack_campaign.Shard
module Campaign = Pacstack_campaign.Campaign
module Machine = Pacstack_machine.Machine
module Scheme = Pacstack_harden.Scheme
module Ast = Pacstack_minic.Ast
module B = Pacstack_minic.Build
module Compile = Pacstack_minic.Compile

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

(* A missing counter reads as zero: the machine only publishes non-zero
   deltas, so e.g. a run with no TLB misses never creates the cell. *)
let counter name =
  match Obs.Metrics.find name with Some (Obs.Metrics.Counter n) -> n | _ -> 0

(* --- Metrics -------------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  Obs.Metrics.incr "x";
  Obs.Metrics.gauge "g" 1.0;
  Obs.Metrics.observe "h" 1.0;
  Obs.Trace.emit "e" [];
  Alcotest.(check int) "no metrics recorded" 0 (List.length (Obs.Metrics.snapshot ()));
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.Trace.events ()))

let test_metrics_basics () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "a";
  Obs.Metrics.incr ~by:4 "a";
  Obs.Metrics.gauge "g" 2.0;
  Obs.Metrics.gauge "g" 3.5;
  Obs.Metrics.register_histogram "h" ~lo:0. ~hi:4. ~buckets:4;
  List.iter (Obs.Metrics.observe "h") [ 0.5; 3.0; -1.0; 10.0; Float.nan ];
  (match Obs.Metrics.find "a" with
  | Some (Obs.Metrics.Counter 5) -> ()
  | _ -> Alcotest.fail "counter should read 5");
  (match Obs.Metrics.find "g" with
  | Some (Obs.Metrics.Gauge v) -> Alcotest.check (Alcotest.float 0.0) "latest value wins" 3.5 v
  | _ -> Alcotest.fail "gauge missing");
  (match Obs.Metrics.find "h" with
  | Some (Obs.Metrics.Histogram { counts; total; _ }) ->
    Alcotest.(check int) "total" 5 total;
    Alcotest.(check (array int)) "out-of-range and NaN clamp to the edges" [| 3; 0; 0; 2 |]
      counts
  | _ -> Alcotest.fail "histogram missing");
  Alcotest.(check (list string)) "snapshot sorted by name" [ "a"; "g"; "h" ]
    (List.map fst (Obs.Metrics.snapshot ()))

(* --- Trace ---------------------------------------------------------------- *)

let test_trace_merge_order () =
  with_obs @@ fun () ->
  Obs.Trace.emit ~key:2 "b" [];
  Obs.Trace.emit ~key:1 "a" [];
  Obs.Trace.emit ~key:1 "c" [];
  Alcotest.(check (list (pair int string)))
    "sorted by (key, name)"
    [ (1, "a"); (1, "c"); (2, "b") ]
    (List.map (fun e -> (e.Obs.Trace.key, e.Obs.Trace.name)) (Obs.Trace.events ()));
  Alcotest.(check (list int)) "seq renumbered per key" [ 0; 1; 0 ]
    (List.map (fun e -> e.Obs.Trace.seq) (Obs.Trace.events ()))

let test_trace_cross_domain_merge () =
  with_obs @@ fun () ->
  (* Each key is emitted by exactly one domain — the campaign-sharding
     discipline — so the merged order is independent of interleaving. *)
  let worker key =
    Domain.spawn (fun () ->
        for i = 0 to 2 do
          Obs.Trace.emit ~key (Printf.sprintf "w%d.%d" key i) []
        done)
  in
  let a = worker 0 and b = worker 1 in
  Domain.join a;
  Domain.join b;
  Alcotest.(check (list string))
    "deterministic merge"
    [ "w0.0"; "w0.1"; "w0.2"; "w1.0"; "w1.1"; "w1.2" ]
    (List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events ()))

let test_trace_overflow_counts_drops () =
  with_obs @@ fun () ->
  (* set_capacity only affects buffers not yet materialised, so overflow
     is exercised in a fresh domain. *)
  Obs.Trace.set_capacity 4;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_capacity 8192) @@ fun () ->
  Domain.join
    (Domain.spawn (fun () ->
         for i = 0 to 9 do
           Obs.Trace.emit ~key:7 "e" [ ("i", Json.Int i) ]
         done));
  let evs = List.filter (fun e -> e.Obs.Trace.key = 7) (Obs.Trace.events ()) in
  Alcotest.(check int) "ring keeps the last 4" 4 (List.length evs);
  Alcotest.(check int) "drops counted" 6 (Obs.Trace.dropped ());
  match evs with
  | { Obs.Trace.fields = [ ("i", Json.Int i) ]; _ } :: _ ->
    Alcotest.(check int) "oldest surviving event is #6" 6 i
  | _ -> Alcotest.fail "unexpected event shape"

(* --- Sink ----------------------------------------------------------------- *)

let test_sink_lines_parse () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "m";
  Obs.Metrics.register_histogram "h" ~lo:0. ~hi:1. ~buckets:2;
  Obs.Metrics.observe "h" 0.5;
  (* a NaN gauge must not break the export (the Json non-finite fix) *)
  Obs.Metrics.gauge "g" Float.nan;
  Obs.Trace.emit ~key:3 "ev" [ ("x", Json.Int 1) ];
  let lines = Obs.Sink.lines () in
  Alcotest.(check int) "header + 3 metrics + 1 event" 5 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e)
    lines;
  match Json.parse (List.hd lines) with
  | Ok v ->
    Alcotest.(check (option string)) "header comes first" (Some "header")
      Json.(Option.bind (member "type" v) to_str)
  | Error e -> Alcotest.failf "header did not parse: %s" e

(* --- Campaign hooks ------------------------------------------------------- *)

let test_campaign_hooks () =
  with_obs @@ fun () ->
  let plan =
    Plan.make ~name:"obs-test" ~seed:1L
      ~shards:[| ("a", 1); ("b", 1); ("c", 1) |]
      ~run:(fun shard _rng -> shard.Shard.index * 2)
  in
  let outcome = Campaign.run ~workers:2 ~progress:(Obs.Campaign_hooks.progress_sink ()) plan in
  Alcotest.(check (array int)) "results unaffected" [| 0; 2; 4 |] (Campaign.results_exn outcome);
  Alcotest.(check int) "tasks counted" 3 (counter "campaign.tasks");
  Alcotest.(check int) "shards finished" 3 (counter "campaign.shards_finished");
  Alcotest.(check int) "no retries" 0 (counter "campaign.retries");
  (match Obs.Metrics.find "campaign.shard_trials" with
  | Some (Obs.Metrics.Histogram { total; _ }) -> Alcotest.(check int) "trial samples" 3 total
  | _ -> Alcotest.fail "trials histogram missing");
  let finished =
    List.filter (fun e -> e.Obs.Trace.name = "campaign.shard_finished") (Obs.Trace.events ())
  in
  Alcotest.(check (list int)) "one event per shard, keyed by index" [ 0; 1; 2 ]
    (List.map (fun e -> e.Obs.Trace.key) finished)

let test_export_worker_count_independent () =
  (* The whole --trace artifact — header, metrics, events — must be
     bit-identical at any worker count: worker-emitted events mix with
     coordinator-emitted ones per key, and the hooks record no
     wall-clock fields. *)
  let export workers =
    with_obs @@ fun () ->
    let plan =
      Plan.make ~name:"obs-det" ~seed:7L
        ~shards:[| ("a", 2); ("b", 1); ("c", 3); ("d", 1) |]
        ~run:(fun shard _rng ->
          Obs.Trace.emit ~key:shard.Shard.index "work"
            [ ("trials", Json.Int shard.Shard.trials) ];
          Obs.Metrics.incr "work.done" ~by:shard.Shard.trials;
          shard.Shard.index)
    in
    let outcome =
      Campaign.run ~workers ~progress:(Obs.Campaign_hooks.progress_sink ()) plan
    in
    ignore (Campaign.results_exn outcome);
    Obs.Sink.lines ()
  in
  let one = export 1 in
  Alcotest.(check (list string)) "1-worker vs 4-worker export" one (export 4)

(* --- Machine and toolchain counters --------------------------------------- *)

let sample_program =
  Ast.program
    [
      Ast.fdef "leaf" ~params:[ "x" ] B.[ ret ((v "x" * i 3) + i 1) ];
      Ast.fdef "main"
        ~locals:[ Ast.Scalar "s"; Ast.Scalar "k" ]
        B.[
            set "s" (i 0);
            for_ "k" ~from:(i 0) ~below:(i 8) [ set "s" (v "s" + call "leaf" [ v "k" ]) ];
            print (v "s");
            ret (i 0);
          ];
    ]

let test_machine_counters () =
  let program = Compile.compile ~scheme:Scheme.pacstack sample_program in
  with_obs @@ fun () ->
  let m = Machine.load program in
  (match Machine.run m with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "sample program failed");
  Alcotest.(check int) "instructions counter matches the machine"
    (Machine.instructions_retired m)
    (counter "machine.instructions");
  Alcotest.(check int) "data hits + misses = memory operations"
    (Machine.memory_operations m)
    (counter "machine.tlb.data_hit" + counter "machine.tlb.data_miss");
  Alcotest.(check bool) "chain links counted under pacstack" true
    (counter "machine.pac.chain.pac" > 0)

let test_emit_counters () =
  with_obs @@ fun () ->
  ignore (Compile.compile ~scheme:Scheme.pacstack sample_program);
  Alcotest.(check bool) "pac emission counted" true
    (counter "harden.emit.pac{scheme=pacstack}" > 0);
  Alcotest.(check bool) "chain links attributed to the scheme" true
    (counter "harden.emit.chain_link{scheme=pacstack}" > 0)

let test_obs_does_not_perturb () =
  let program = Compile.compile ~scheme:Scheme.pacstack sample_program in
  let run () =
    let m = Machine.load program in
    match Machine.run m with
    | Machine.Halted 0 -> (Machine.output m, Machine.cycles m)
    | _ -> Alcotest.fail "sample program failed"
  in
  let plain = run () in
  let traced = with_obs run in
  Alcotest.(check (list int64)) "output identical" (fst plain) (fst traced);
  Alcotest.(check int) "cycles identical" (snd plain) (snd traced)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "counters, gauges, histograms" `Quick test_metrics_basics;
        ] );
      ( "trace",
        [
          Alcotest.test_case "merge order" `Quick test_trace_merge_order;
          Alcotest.test_case "cross-domain merge deterministic" `Quick
            test_trace_cross_domain_merge;
          Alcotest.test_case "ring overflow counts drops" `Quick test_trace_overflow_counts_drops;
        ] );
      ( "sink", [ Alcotest.test_case "every line parses" `Quick test_sink_lines_parse ] );
      ( "campaign",
        [ Alcotest.test_case "progress hooks" `Quick test_campaign_hooks;
          Alcotest.test_case "export is worker-count independent" `Quick
            test_export_worker_count_independent
        ] );
      ( "layers",
        [
          Alcotest.test_case "machine counters" `Quick test_machine_counters;
          Alcotest.test_case "frame emission counters" `Quick test_emit_counters;
          Alcotest.test_case "instrumentation does not perturb execution" `Quick
            test_obs_does_not_perturb;
        ] );
    ]
