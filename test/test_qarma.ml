(* Tests for the QARMA-64-structured tweakable cipher and the H_k MAC:
   structural inverses, exact invertibility, frozen regression vectors and
   the statistical PRF-quality properties the ACS analysis relies on. *)

module Word64 = Pacstack_util.Word64
module Rng = Pacstack_util.Rng
module Sbox = Pacstack_qarma.Sbox
module Qarma64 = Pacstack_qarma.Qarma64
module Prf = Pacstack_qarma.Prf

let check_w64 = Alcotest.testable Word64.pp Word64.equal
let qtest name count gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let full64 =
  QCheck2.Gen.(
    map2 (fun a b -> Int64.logxor (Int64.of_int a) (Int64.shift_left (Int64.of_int b) 31)) int int)

(* --- S-boxes ------------------------------------------------------------ *)

let test_sbox_permutations () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " is a permutation") true (Sbox.is_permutation s))
    [ ("sigma0", Sbox.sigma0); ("sigma1", Sbox.sigma1); ("sigma2", Sbox.sigma2) ]

let test_sigma0_involution () =
  Alcotest.(check bool) "sigma0 involutory" true (Sbox.is_involution Sbox.sigma0)

let test_sbox_inverse () =
  List.iter
    (fun s ->
      for x = 0 to 15 do
        Alcotest.(check int) "inverse" x (Sbox.apply_inv s (Sbox.apply s x))
      done)
    [ Sbox.sigma0; Sbox.sigma1; Sbox.sigma2 ]

let test_sbox_bounds () =
  Alcotest.check_raises "apply out of range" (Invalid_argument "Sbox.apply") (fun () ->
      ignore (Sbox.apply Sbox.sigma1 16))

let prop_subcells_inverse =
  qtest "sub_cells inverse" 300 full64 (fun w ->
      Word64.equal (Sbox.sub_cells_inv Sbox.sigma1 (Sbox.sub_cells Sbox.sigma1 w)) w)

let prop_subcells_fast =
  qtest "byte-table sub_cells == cell-by-cell" 500 full64 (fun w ->
      List.for_all
        (fun s ->
          Word64.equal (Sbox.sub_cells_fast s w) (Sbox.sub_cells s w)
          && Word64.equal (Sbox.sub_cells_inv_fast s w) (Sbox.sub_cells_inv s w))
        [ Sbox.sigma0; Sbox.sigma1; Sbox.sigma2 ])

(* --- diffusion layers ---------------------------------------------------- *)

let prop_tau_inverse =
  qtest "tau inverse" 300 full64 (fun w -> Word64.equal (Qarma64.tau_inv (Qarma64.tau w)) w)

let prop_mix_involution =
  qtest "MixColumns involutory" 300 full64 (fun w ->
      Word64.equal (Qarma64.mix_columns (Qarma64.mix_columns w)) w)

let prop_tweak_inverse =
  qtest "tweak schedule inverse" 300 full64 (fun w ->
      Word64.equal (Qarma64.tweak_backward (Qarma64.tweak_forward w)) w
      && Word64.equal (Qarma64.tweak_forward (Qarma64.tweak_backward w)) w)

let test_round_constants () =
  Alcotest.check check_w64 "c0 is zero" 0L (Qarma64.round_constant 0);
  Alcotest.(check bool) "constants distinct" true
    (List.length (List.sort_uniq compare (List.init 8 Qarma64.round_constant)) = 8);
  Alcotest.check_raises "out of range" (Invalid_argument "Qarma64.round_constant") (fun () ->
      ignore (Qarma64.round_constant 8))

(* --- encryption ----------------------------------------------------------- *)

let fixed_key = Qarma64.key ~w0:0x0123456789abcdefL ~k0:0xfedcba9876543210L

let prop_roundtrip =
  qtest "encrypt/decrypt roundtrip" 200
    QCheck2.Gen.(tup4 full64 full64 full64 full64)
    (fun (w0, k0, tweak, p) ->
      let key = Qarma64.key ~w0 ~k0 in
      Word64.equal (Qarma64.decrypt key ~tweak (Qarma64.encrypt key ~tweak p)) p)

let prop_roundtrip_reduced =
  qtest "roundtrip at reduced rounds" 100
    QCheck2.Gen.(tup2 (int_range 1 7) full64)
    (fun (rounds, p) ->
      let tweak = 0x42L in
      Word64.equal
        (Qarma64.decrypt ~rounds fixed_key ~tweak (Qarma64.encrypt ~rounds fixed_key ~tweak p))
        p)

(* Frozen regression vectors: any change to the cipher's structure or
   constants is caught here (see DESIGN.md for why these are self-generated
   rather than ARM silicon vectors). *)
let test_regression_vectors () =
  List.iter
    (fun (p, t, c) ->
      Alcotest.check check_w64 "frozen vector" c (Qarma64.encrypt fixed_key ~tweak:t p))
    [
      (0x0000000000000000L, 0x0000000000000000L, 0xbf12d538b1239d20L);
      (0xdeadbeefcafebabeL, 0x1122334455667788L, 0x1b415073a6e89eadL);
      (0x0000000000000001L, 0x0000000000000000L, 0x9b62c508e7bc0996L);
      (0x0000000000000000L, 0x0000000000000001L, 0x0e586e1cf9a8e866L);
      (0xffffffffffffffffL, 0xffffffffffffffffL, 0x5e7240a2bebcabffL);
    ];
  Alcotest.check check_w64 "frozen reduced-round vector" 0xa96e2d9ce255f255L
    (Qarma64.encrypt ~rounds:2 fixed_key ~tweak:42L 7L)

let test_rounds_validation () =
  Alcotest.check_raises "0 rounds" (Invalid_argument "Qarma64: rounds") (fun () ->
      ignore (Qarma64.encrypt ~rounds:0 fixed_key ~tweak:0L 0L))

let avalanche flip =
  let rng = Rng.create 0xa11L in
  let total = ref 0 in
  let n = 400 in
  for _ = 1 to n do
    let p = Rng.next64 rng and t = Rng.next64 rng in
    let bit = Rng.int rng 64 in
    let c1, c2 = flip p t bit in
    total := !total + Word64.hamming c1 c2
  done;
  float_of_int !total /. float_of_int n

let test_avalanche_plaintext () =
  let mean =
    avalanche (fun p t bit ->
        ( Qarma64.encrypt fixed_key ~tweak:t p,
          Qarma64.encrypt fixed_key ~tweak:t (Word64.flip_bit p bit) ))
  in
  Alcotest.(check bool) (Printf.sprintf "plaintext avalanche %.1f" mean) true
    (mean > 28.0 && mean < 36.0)

let test_avalanche_tweak () =
  let mean =
    avalanche (fun p t bit ->
        ( Qarma64.encrypt fixed_key ~tweak:t p,
          Qarma64.encrypt fixed_key ~tweak:(Word64.flip_bit t bit) p ))
  in
  Alcotest.(check bool) (Printf.sprintf "tweak avalanche %.1f" mean) true
    (mean > 28.0 && mean < 36.0)

let test_avalanche_key () =
  let mean =
    avalanche (fun p t bit ->
        let key2 =
          Qarma64.key ~w0:0x0123456789abcdefL ~k0:(Word64.flip_bit 0xfedcba9876543210L bit)
        in
        (Qarma64.encrypt fixed_key ~tweak:t p, Qarma64.encrypt key2 ~tweak:t p))
  in
  Alcotest.(check bool) (Printf.sprintf "key avalanche %.1f" mean) true
    (mean > 28.0 && mean < 36.0)

let prop_injective_per_tweak =
  qtest "injective per tweak" 200
    QCheck2.Gen.(tup2 full64 full64)
    (fun (p1, p2) ->
      Word64.equal p1 p2
      || not
           (Word64.equal
              (Qarma64.encrypt fixed_key ~tweak:9L p1)
              (Qarma64.encrypt fixed_key ~tweak:9L p2)))

(* --- fast path vs. reference oracle -------------------------------------- *)

(* The SWAR rewrite must be bit-identical to the retained cell-by-cell
   implementation. First the diffusion-layer building blocks... *)

let prop_diffusion_differential =
  qtest "SWAR diffusion layers == reference" 1000 full64 (fun w ->
      Word64.equal (Qarma64.tau w) (Qarma64.Reference.tau w)
      && Word64.equal (Qarma64.tau_inv w) (Qarma64.Reference.tau_inv w)
      && Word64.equal (Qarma64.mix_columns w) (Qarma64.Reference.mix_columns w)
      && Word64.equal (Qarma64.tweak_forward w) (Qarma64.Reference.tweak_forward w)
      && Word64.equal (Qarma64.tweak_backward w) (Qarma64.Reference.tweak_backward w))

(* ...then the whole cipher, over >= 10k random (key, tweak, plaintext)
   triples, in both directions and through the precomputed-context path. *)

let test_cipher_differential () =
  let rng = Rng.create 0xd1ffL in
  for _ = 1 to 10_000 do
    let key = Qarma64.key ~w0:(Rng.next64 rng) ~k0:(Rng.next64 rng) in
    let tweak = Rng.next64 rng and p = Rng.next64 rng in
    let c_ref = Qarma64.Reference.encrypt key ~tweak p in
    let c = Qarma64.encrypt key ~tweak p in
    if not (Word64.equal c c_ref) then
      Alcotest.failf "encrypt diverges: key=(%Lx,%Lx) tweak=%Lx p=%Lx fast=%Lx ref=%Lx"
        key.Qarma64.w0 key.Qarma64.k0 tweak p c c_ref;
    let d_ref = Qarma64.Reference.decrypt key ~tweak c in
    let d = Qarma64.decrypt key ~tweak c in
    if not (Word64.equal d d_ref && Word64.equal d p) then
      Alcotest.failf "decrypt diverges: key=(%Lx,%Lx) tweak=%Lx c=%Lx fast=%Lx ref=%Lx"
        key.Qarma64.w0 key.Qarma64.k0 tweak c d d_ref;
    let ctx = Qarma64.prepare key in
    if
      not
        (Word64.equal (Qarma64.encrypt_ctx ctx ~tweak p) c
        && Word64.equal (Qarma64.decrypt_ctx ctx ~tweak c) p)
    then
      Alcotest.failf "ctx path diverges: key=(%Lx,%Lx) tweak=%Lx" key.Qarma64.w0 key.Qarma64.k0
        tweak
  done

let test_cipher_differential_reduced () =
  let rng = Rng.create 0xfadeL in
  for rounds = 1 to 7 do
    for _ = 1 to 200 do
      let key = Qarma64.key ~w0:(Rng.next64 rng) ~k0:(Rng.next64 rng) in
      let tweak = Rng.next64 rng and p = Rng.next64 rng in
      let c = Qarma64.encrypt ~rounds key ~tweak p in
      Alcotest.check check_w64
        (Printf.sprintf "encrypt at %d rounds" rounds)
        (Qarma64.Reference.encrypt ~rounds key ~tweak p)
        c;
      Alcotest.check check_w64
        (Printf.sprintf "decrypt at %d rounds" rounds)
        (Qarma64.Reference.decrypt ~rounds key ~tweak c)
        (Qarma64.decrypt ~rounds key ~tweak c)
    done
  done

(* A ctx is reusable: repeated calls with interleaved tweaks never
   contaminate each other (the tweak schedule is run incrementally inside
   encrypt_ctx, so this pins the restore-on-exit behaviour). *)
let test_ctx_reuse () =
  let ctx = Qarma64.prepare fixed_key in
  let pairs = List.init 50 (fun i -> (Int64.of_int (i * 77), Int64.of_int (i * 131))) in
  let once = List.map (fun (t, p) -> Qarma64.encrypt_ctx ctx ~tweak:t p) pairs in
  let again = List.map (fun (t, p) -> Qarma64.encrypt_ctx ctx ~tweak:t p) pairs in
  List.iter2 (Alcotest.check check_w64 "ctx reuse stable") once again;
  List.iter2
    (fun (t, p) c ->
      Alcotest.check check_w64 "ctx matches one-shot" (Qarma64.encrypt fixed_key ~tweak:t p) c)
    pairs once

(* The frozen vectors above pin the fast path (Qarma64.encrypt); this pins
   the oracle to the same constants, so neither implementation can drift. *)
let test_regression_vectors_reference () =
  List.iter
    (fun (p, t, c) ->
      Alcotest.check check_w64 "frozen vector (reference)" c
        (Qarma64.Reference.encrypt fixed_key ~tweak:t p);
      Alcotest.check check_w64 "frozen vector inverts (reference)" p
        (Qarma64.Reference.decrypt fixed_key ~tweak:t c))
    [
      (0x0000000000000000L, 0x0000000000000000L, 0xbf12d538b1239d20L);
      (0xdeadbeefcafebabeL, 0x1122334455667788L, 0x1b415073a6e89eadL);
      (0x0000000000000001L, 0x0000000000000000L, 0x9b62c508e7bc0996L);
      (0x0000000000000000L, 0x0000000000000001L, 0x0e586e1cf9a8e866L);
      (0xffffffffffffffffL, 0xffffffffffffffffL, 0x5e7240a2bebcabffL);
    ];
  Alcotest.check check_w64 "frozen reduced-round vector (reference)" 0xa96e2d9ce255f255L
    (Qarma64.Reference.encrypt ~rounds:2 fixed_key ~tweak:42L 7L)

let test_key_helpers () =
  let rng = Rng.create 77L in
  let k1 = Qarma64.random_key rng and k2 = Qarma64.random_key rng in
  Alcotest.(check bool) "random keys differ" false (Qarma64.key_equal k1 k2);
  Alcotest.(check bool) "key equal reflexive" true (Qarma64.key_equal k1 k1)

(* --- Prf ------------------------------------------------------------------ *)

let test_prf_truncation () =
  let prf = Prf.create fixed_key in
  let full = Prf.mac64 prf ~data:123L ~modifier:456L in
  let t16 = Prf.mac prf ~bits:16 ~data:123L ~modifier:456L in
  Alcotest.check check_w64 "low 16 bits" (Int64.logand full 0xffffL) t16

let test_prf_bits_validation () =
  let prf = Prf.create fixed_key in
  Alcotest.check_raises "0 bits" (Invalid_argument "Prf.mac: bits") (fun () ->
      ignore (Prf.mac prf ~bits:0 ~data:0L ~modifier:0L));
  Alcotest.check_raises "33 bits" (Invalid_argument "Prf.mac: bits") (fun () ->
      ignore (Prf.mac prf ~bits:33 ~data:0L ~modifier:0L))

let test_prf_fast_quality () =
  (* the fast instantiation must also behave like a PRF: ~uniform 8-bit
     tokens over distinct modifiers *)
  let prf = Prf.create_fast 0x5eedL in
  let buckets = Array.make 256 0 in
  for i = 1 to 25600 do
    let t = Int64.to_int (Prf.mac prf ~bits:8 ~data:99L ~modifier:(Int64.of_int i)) in
    buckets.(t) <- buckets.(t) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket near 100" true (c > 50 && c < 160))
    buckets

let test_prf_equal () =
  let a = Prf.create fixed_key in
  let b = Prf.create fixed_key in
  let f = Prf.create_fast 1L in
  Alcotest.(check bool) "same key equal" true (Prf.equal a b);
  Alcotest.(check bool) "qarma <> fast" false (Prf.equal a f);
  Alcotest.(check bool) "fast equal" true (Prf.equal f (Prf.create_fast 1L))

let test_prf_key_access () =
  Alcotest.(check bool) "qarma key exposed" true (Prf.key (Prf.create fixed_key) <> None);
  Alcotest.(check bool) "fast key hidden" true (Prf.key (Prf.create_fast 2L) = None)

let test_prf_modifier_sensitivity () =
  let prf = Prf.create fixed_key in
  let a = Prf.mac64 prf ~data:5L ~modifier:1L in
  let b = Prf.mac64 prf ~data:5L ~modifier:2L in
  Alcotest.(check bool) "different modifiers differ" false (Word64.equal a b)

let () =
  Alcotest.run "qarma"
    [
      ( "sbox",
        [
          Alcotest.test_case "permutations" `Quick test_sbox_permutations;
          Alcotest.test_case "sigma0 involution" `Quick test_sigma0_involution;
          Alcotest.test_case "inverses" `Quick test_sbox_inverse;
          Alcotest.test_case "bounds" `Quick test_sbox_bounds;
          prop_subcells_inverse;
          prop_subcells_fast;
        ] );
      ( "diffusion",
        [
          prop_tau_inverse;
          prop_mix_involution;
          prop_tweak_inverse;
          Alcotest.test_case "round constants" `Quick test_round_constants;
        ] );
      ( "cipher",
        [
          prop_roundtrip;
          prop_roundtrip_reduced;
          Alcotest.test_case "frozen vectors" `Quick test_regression_vectors;
          Alcotest.test_case "round validation" `Quick test_rounds_validation;
          Alcotest.test_case "plaintext avalanche" `Quick test_avalanche_plaintext;
          Alcotest.test_case "tweak avalanche" `Quick test_avalanche_tweak;
          Alcotest.test_case "key avalanche" `Quick test_avalanche_key;
          prop_injective_per_tweak;
          Alcotest.test_case "key helpers" `Quick test_key_helpers;
        ] );
      ( "differential",
        [
          prop_diffusion_differential;
          Alcotest.test_case "10k triples fast == reference" `Quick test_cipher_differential;
          Alcotest.test_case "reduced rounds fast == reference" `Quick
            test_cipher_differential_reduced;
          Alcotest.test_case "ctx reuse" `Quick test_ctx_reuse;
          Alcotest.test_case "frozen vectors pin the oracle" `Quick
            test_regression_vectors_reference;
        ] );
      ( "prf",
        [
          Alcotest.test_case "truncation" `Quick test_prf_truncation;
          Alcotest.test_case "bits validation" `Quick test_prf_bits_validation;
          Alcotest.test_case "fast PRF uniformity" `Quick test_prf_fast_quality;
          Alcotest.test_case "equality" `Quick test_prf_equal;
          Alcotest.test_case "key access" `Quick test_prf_key_access;
          Alcotest.test_case "modifier sensitivity" `Quick test_prf_modifier_sensitivity;
        ] );
    ]
