(* Command-line front end for the PACStack reproduction: run assembly
   programs or the built-in workloads under any hardening scheme, and
   regenerate the paper's tables, figures and attack experiments. *)

open Cmdliner
module Scheme = Pacstack_harden.Scheme
module Machine = Pacstack_machine.Machine
module Trap = Pacstack_machine.Trap
module Speclike = Pacstack_workloads.Speclike
module Confirm = Pacstack_workloads.Confirm
module Report = Pacstack_report.Report
module Plans = Pacstack_report.Plans
module Fuzz_driver = Pacstack_fuzz.Driver
module Inject_engine = Pacstack_inject.Engine
module Mega = Pacstack_inject.Mega
module Fleet = Pacstack_fleet.Fleet
module Fleet_arrival = Pacstack_fleet.Arrival
module Obs = Pacstack_obs.Obs

let scheme_conv =
  let parse s =
    match Scheme.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  Arg.conv (parse, Scheme.pp)

let scheme_arg =
  let doc =
    "Hardening scheme: any registered name (baseline, stack-protector-strong, \
     branch-protection, shadow-call-stack, pacstack-nomask, pacstack, pcan, \
     zipper-stack, pactight or parts)."
  in
  Arg.(value & opt scheme_conv Scheme.pacstack & info [ "s"; "scheme" ] ~doc)

let report_outcome machine = function
  | Machine.Halted code ->
    List.iter (fun v -> Printf.printf "%Ld\n" v) (Machine.output machine);
    Printf.printf "exit %d after %d cycles (%d instructions)\n" code (Machine.cycles machine)
      (Machine.instructions_retired machine);
    if code = 0 then 0 else 1
  | Machine.Faulted f ->
    Printf.printf "fault: %s\n" (Trap.to_string f);
    2
  | Machine.Out_of_fuel ->
    print_endline "out of fuel";
    3

(* --- run: execute an assembly file -------------------------------------- *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")
  in
  let fuel =
    Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~doc:"Instruction budget.")
  in
  let action file fuel =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Pacstack_isa.Asm.parse text with
    | exception Pacstack_isa.Asm.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      1
    | program ->
      let machine = Machine.load program in
      report_outcome machine (Machine.run ~fuel machine)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and run a program on the simulated machine.")
    Term.(const action $ file $ fuel)

(* --- bench: run a built-in SPEC-like benchmark -------------------------- *)

let bench_cmd =
  let bench_name =
    let names = String.concat ", " (List.map (fun b -> b.Speclike.name) Speclike.all) in
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:("One of: " ^ names))
  in
  let speed =
    Arg.(value & flag & info [ "speed" ] ~doc:"Use the SPECspeed-like scale.")
  in
  let action scheme name speed =
    match Speclike.find name with
    | None ->
      Printf.eprintf "unknown benchmark %S\n" name;
      1
    | Some bench ->
      let variant = if speed then Speclike.Speed else Speclike.Rate in
      let baseline = Speclike.measure ~scheme:Scheme.unprotected variant bench in
      let m = Speclike.measure ~scheme variant bench in
      Printf.printf "%s (%s) under %s: %d cycles, %d instructions, checksum %Ld\n" name
        (Speclike.variant_to_string variant)
        (Scheme.to_string scheme) m.Speclike.cycles m.Speclike.instructions m.Speclike.checksum;
      Printf.printf "overhead vs baseline: %.2f%%\n" (Speclike.overhead_pct ~baseline m);
      0
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run one SPEC-like benchmark under a scheme.")
    Term.(const action $ scheme_arg $ bench_name $ speed)

(* --- confirm: compatibility suite ---------------------------------------- *)

let confirm_cmd =
  let action scheme =
    let results = Confirm.run_all ~scheme in
    let failed = ref 0 in
    List.iter
      (fun (t, outcome) ->
        match outcome with
        | Confirm.Pass -> Printf.printf "PASS %-20s %s\n" t.Confirm.name t.Confirm.description
        | Confirm.Fail m ->
          incr failed;
          Printf.printf "FAIL %-20s %s\n" t.Confirm.name m)
      results;
    if !failed = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "confirm" ~doc:"Run the ConFIRM-style compatibility suite under a scheme.")
    Term.(const action $ scheme_arg)

(* --- report sections ------------------------------------------------------ *)

let section_cmd name doc render =
  let action () =
    render Format.std_formatter;
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ const ())

let all_cmd =
  section_cmd "all" "Regenerate every table, figure and security experiment." (fun fmt ->
      Report.all fmt)

(* --- campaign-style subcommands: interrupt handling ----------------------- *)

(* SIGINT/SIGTERM during a campaign flush every open checkpoint manifest
   before exiting with the conventional 128+signum code, so an
   interrupted run is always resumable from its last completed shard.
   Installed only around the campaign-style subcommands and restored
   afterwards. *)
let with_campaign_signals f =
  let install signum code =
    match
      Sys.signal signum
        (Sys.Signal_handle
           (fun _ ->
             Pacstack_campaign.Checkpoint.flush_all ();
             exit code))
    with
    | previous -> Some (signum, previous)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let saved = List.filter_map (fun (s, c) -> install s c) [ (Sys.sigint, 130); (Sys.sigterm, 143) ] in
  Fun.protect
    ~finally:
      (fun () ->
        List.iter (fun (s, previous) -> try ignore (Sys.signal s previous) with _ -> ()) saved)
    f

(* --- --trace: lib/obs instrumentation on the campaign subcommands -------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable lib/obs instrumentation for this run and write the metrics registry plus \
           merged trace events to $(docv) as JSON lines afterwards. Results are identical \
           with or without tracing.")

(* Runs [f] with obs enabled when --trace was given, handing it an obs
   progress sink to compose with the rendering sink. The trace file is
   written even when the run exits non-zero (a failing gate is exactly
   when the trace is wanted) and on SIGINT-style exits via at_exit-free
   Fun.protect. *)
let with_trace trace f =
  match trace with
  | None -> f (fun (_ : Pacstack_campaign.Progress.event) -> ())
  | Some path ->
    Obs.reset ();
    Obs.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.Sink.write_file path;
        Obs.reset ();
        Printf.eprintf "wrote trace %s\n%!" path)
      (fun () -> f (Obs.Campaign_hooks.progress_sink ()))

(* --- campaign: the parallel experiment engine ----------------------------- *)

let campaign_cmd =
  let open Pacstack_campaign in
  let name_arg =
    let names = String.concat ", " (List.map (fun e -> e.Plans.name) Plans.entries) in
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CAMPAIGN" ~doc:("One of: " ^ names ^ "; or 'list' to enumerate."))
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "w"; "workers" ]
          ~doc:
            "Worker domains. 1 (the default) is sequential; results are identical for any \
             value. 0 means one per recommended domain.")
  in
  let seed =
    Arg.(
      value
      & opt (some int64) None
      & info [ "seed" ] ~doc:"Campaign seed (default: the campaign's canonical seed).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Checkpoint manifest. Created if absent; shards already recorded there are \
             restored instead of re-run, so re-running after an interrupt completes only \
             the remainder.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT" ~doc:"Also write the merged results as JSON to $(docv).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress events on stderr.")
  in
  let action name workers seed resume json_out trace quiet =
    with_campaign_signals @@ fun () ->
    if name = "list" then begin
      List.iter
        (fun e -> Printf.printf "%-12s %s (default seed %Ld)\n" e.Plans.name e.Plans.doc e.Plans.default_seed)
        Plans.entries;
      0
    end
    else
      match Plans.find name with
      | None ->
        Printf.eprintf
          "pacstack: unknown campaign %S; try 'pacstack campaign list'.\n" name;
        1
      | Some entry ->
        let workers = if workers = 0 then Pool.default_workers () else workers in
        if workers < 1 then begin
          Printf.eprintf "pacstack: --workers must be >= 0\n";
          1
        end
        else begin
          with_trace trace @@ fun obs ->
          let render =
            if quiet then Progress.null else Progress.formatter Format.err_formatter
          in
          let progress e = obs e; render e in
          let seed = Option.value seed ~default:entry.Plans.default_seed in
          let json =
            entry.Plans.execute ~workers ~seed ~checkpoint:resume ~progress
              Format.std_formatter
          in
          (match json_out with
          | None -> ()
          | Some path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Json.to_string json ^ "\n"));
            Printf.printf "wrote %s\n" path);
          0
        end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run an experiment campaign on a parallel worker pool with deterministic sharding, \
          checkpoint/resume and progress events.")
    Term.(const action $ name_arg $ workers $ seed $ resume $ json_out $ trace_arg $ quiet)

(* --- fuzz: differential fuzzing against the reference interpreter -------- *)

let fuzz_cmd =
  let open Pacstack_campaign in
  let seeds =
    Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Number of random programs to generate.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "w"; "workers" ]
          ~doc:
            "Worker domains; the report is identical for any value. 0 means one per \
             recommended domain.")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Campaign seed; program $(i,i) depends only on (seed, i).")
  in
  let scheme =
    Arg.(
      value
      & opt (some scheme_conv) None
      & info [ "s"; "scheme" ] ~doc:"Restrict to one hardening scheme (default: every registered scheme).")
  in
  let no_peephole =
    Arg.(value & flag & info [ "no-peephole" ] ~doc:"Only compile with the peephole optimizer off.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress events on stderr.")
  in
  let action seeds workers seed scheme no_peephole trace quiet =
    with_campaign_signals @@ fun () ->
    if seeds < 1 then begin
      Printf.eprintf "pacstack: --seeds must be >= 1\n";
      1
    end
    else begin
      with_trace trace @@ fun obs ->
      let workers = if workers = 0 then Pool.default_workers () else workers in
      let render =
        if quiet then Progress.null else Progress.formatter Format.err_formatter
      in
      let progress e = obs e; render e in
      let schemes = Option.map (fun s -> [ s ]) scheme in
      let optimize = if no_peephole then Some [ false ] else None in
      let plan = Plans.fuzz_plan ?schemes ?optimize ~seeds ~seed () in
      let outcome = Campaign.run ~workers ~progress plan in
      let totals = Plans.fuzz_totals outcome in
      let fmt = Format.std_formatter in
      Format.fprintf fmt "%a@." Fuzz_driver.pp_stats totals;
      Format.fprintf fmt "throughput: %.1f programs/s@."
        (float_of_int totals.Fuzz_driver.programs /. max 1e-9 outcome.Campaign.elapsed_s);
      (match Pacstack_fuzz.Triage.buckets (Fuzz_driver.triage_entries totals) with
      | [] -> ()
      | buckets ->
        Format.fprintf fmt "@[<v>divergence buckets:@,%a@]@." Pacstack_fuzz.Triage.pp_buckets
          buckets);
      match totals.Fuzz_driver.failures with
      | [] ->
        if totals.Fuzz_driver.crashes > 0 then begin
          Format.fprintf fmt "harness crashes on %d seeds — fuzzer bug@." totals.Fuzz_driver.crashes;
          1
        end
        else begin
          Format.fprintf fmt "all programs agree with the reference interpreter@.";
          0
        end
      | (f : Fuzz_driver.failure) :: _ ->
        (* Reproduce the first divergence from its seed alone, shrink it
           against the failing (scheme, peephole) variant, and print the
           minimised program. *)
        let cfg =
          {
            Pacstack_fuzz.Oracle.default_config with
            schemes =
              (match Scheme.of_string f.Fuzz_driver.scheme with
              | Some s -> [ s ]
              | None -> Scheme.all);
            optimize = [ f.Fuzz_driver.optimize ];
          }
        in
        let diverges p =
          match Pacstack_fuzz.Oracle.check cfg p with
          | Pacstack_fuzz.Oracle.Disagree _ -> true
          | _ -> false
        in
        let p0 = Fuzz_driver.program_of_seed ~campaign_seed:seed f.Fuzz_driver.seed in
        let small = Pacstack_fuzz.Shrink.shrink ~keep:diverges p0 in
        Format.fprintf fmt
          "@[<v>first divergence: seed %d under %s%s at %s@ expected %s, got %s@]@."
          f.Fuzz_driver.seed f.Fuzz_driver.scheme
          (if f.Fuzz_driver.optimize then "+peephole" else "")
          f.Fuzz_driver.site f.Fuzz_driver.expected f.Fuzz_driver.actual;
        Format.fprintf fmt "shrunk repro (%d statements):@.%s@."
          (Pacstack_minic.Ast.program_size small)
          (Pacstack_fuzz.Pp.program_to_string small);
        1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the mini-C pipeline: random programs compiled under every \
          scheme, with and without the peephole optimizer, checked against the reference \
          interpreter. Exits 1 if any divergence is found, with a shrunk reproducer.")
    Term.(const action $ seeds $ workers $ seed $ scheme $ no_peephole $ trace_arg $ quiet)

(* --- inject: deterministic fault injection ------------------------------- *)

let inject_cmd =
  let open Pacstack_campaign in
  let faults =
    Arg.(value & opt int 120 & info [ "n"; "faults" ] ~doc:"Number of faults to inject.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "w"; "workers" ]
          ~doc:
            "Worker domains; the report is identical for any value. 0 means one per \
             recommended domain.")
  in
  let seed =
    Arg.(
      value & opt int64 7L
      & info [ "seed" ] ~doc:"Campaign seed; fault $(i,i) depends only on (seed, i).")
  in
  let scheme =
    Arg.(
      value
      & opt (some scheme_conv) None
      & info [ "s"; "scheme" ] ~doc:"Restrict to one hardening scheme (default: every registered scheme).")
  in
  let pac_bits =
    Arg.(
      value & opt int 4
      & info [ "pac-bits" ]
          ~doc:"PAC width of the simulated machine (default 4, collisions observable).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Checkpoint manifest. Created if absent; shards already recorded there are \
             restored instead of re-run.")
  in
  let gate =
    Arg.(
      value & opt scheme_conv Scheme.pacstack
      & info [ "gate" ]
          ~doc:"Exit 1 when any fault is silent under this scheme (default: pacstack).")
  in
  let no_gate =
    Arg.(value & flag & info [ "no-gate" ] ~doc:"Report silent corruption without failing.")
  in
  let mega =
    Arg.(
      value & flag
      & info [ "mega" ]
          ~doc:
            "Mega-campaign mode: fold each shard into constant-size streaming statistics \
             (memory O(shards), not O(faults)), report silent rates as Wilson 95% \
             intervals, and compact the checkpoint manifest as it grows.")
  in
  let isolation =
    Arg.(
      value
      & opt (enum [ ("domain", Campaign.Domains); ("process", Campaign.Processes) ])
          Campaign.Domains
      & info [ "isolation" ] ~docv:"MODE"
          ~doc:
            "Shard executor: $(b,domain) runs shards on an in-process domain pool; \
             $(b,process) forks each shard attempt into its own child so a crash, OOM \
             kill or hang is an isolated retry instead of the end of the campaign.")
  in
  let shard_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "shard-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock deadline per shard attempt (process isolation only): a shard \
             past it is SIGKILLed, retried and eventually quarantined.")
  in
  let shard_faults =
    Arg.(
      value & opt int 512
      & info [ "shard-faults" ]
          ~doc:"Faults per shard in $(b,--mega) mode (default 512).")
  in
  let compact_every =
    Arg.(
      value & opt int 256
      & info [ "compact-every" ]
          ~doc:
            "In $(b,--mega) mode with $(b,--resume): rewrite the manifest as one merged \
             statistics line whenever this many uncompacted shard lines accumulate \
             (default 256).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress events on stderr.")
  in
  let action faults workers seed scheme pac_bits resume gate no_gate mega isolation
      shard_timeout shard_faults compact_every trace quiet =
    with_campaign_signals @@ fun () ->
    if faults < 1 then begin
      Printf.eprintf "pacstack: --faults must be >= 1\n";
      1
    end
    else if pac_bits < 1 || pac_bits > 16 then begin
      Printf.eprintf "pacstack: --pac-bits must be in [1, 16]\n";
      1
    end
    else if shard_faults < 1 then begin
      Printf.eprintf "pacstack: --shard-faults must be >= 1\n";
      1
    end
    else if compact_every < 1 then begin
      Printf.eprintf "pacstack: --compact-every must be >= 1\n";
      1
    end
    else if (match shard_timeout with Some t -> t <= 0.0 | None -> false) then begin
      Printf.eprintf "pacstack: --shard-timeout must be > 0\n";
      1
    end
    else begin
      with_trace trace @@ fun obs ->
      let workers = if workers = 0 then Pool.default_workers () else workers in
      let render =
        if quiet then Progress.null else Progress.formatter Format.err_formatter
      in
      let progress e = obs e; render e in
      let schemes = Option.map (fun s -> [ s ]) scheme in
      let policy =
        { Campaign.default_policy with isolation; shard_timeout_s = shard_timeout }
      in
      let gate_name = Scheme.to_string gate in
      let print_quarantines (outcome : _ Campaign.outcome) =
        List.iter
          (fun (q : Campaign.quarantine) ->
            Printf.printf "quarantined shard %d (%s) after %d attempts: %s\n"
              q.Campaign.shard q.Campaign.label q.Campaign.attempts q.Campaign.error)
          outcome.Campaign.quarantined
      in
      let print_reproducers rs =
        Printf.printf "silent corruption under %s — JSON reproducers:\n" gate_name;
        List.iter
          (fun (r : Inject_engine.reproducer) ->
            let json =
              match Inject_engine.reproducer_to_json r with
              | Json.Obj fields ->
                Json.Obj
                  (fields
                  @ [
                      ("seed", Json.String (Int64.to_string seed));
                      ("pac_bits", Json.Int pac_bits);
                    ])
              | other -> other
            in
            print_endline (Json.to_string json))
          rs
      in
      if mega then begin
        let plan = Plans.mega_plan ?schemes ~pac_bits ~faults ~shard_faults ~seed () in
        let outcome =
          Campaign.run ~workers ~progress ~policy
            ?checkpoint:(Option.map (fun path -> (path, Plans.mega_codec)) resume)
            ?compaction:
              (Option.map (fun _ -> Plans.mega_compaction ~keep:compact_every) resume)
            plan
        in
        let totals = Plans.mega_totals outcome in
        Plans.pp_mega_table Format.std_formatter totals;
        print_quarantines outcome;
        let gate_silents =
          match List.assoc_opt gate_name totals.Mega.cells with
          | Some c -> c.Mega.silent
          | None -> 0
        in
        if no_gate || gate_silents = 0 then 0
        else begin
          print_reproducers
            (List.filter
               (fun (r : Inject_engine.reproducer) ->
                 String.equal r.Inject_engine.scheme gate_name)
               totals.Mega.repro);
          let dropped = Mega.repro_dropped totals in
          if dropped > 0 then
            Printf.printf
              "(%d further silent event(s) beyond the %d-reproducer retention cap)\n"
              dropped Mega.repro_cap;
          1
        end
      end
      else begin
        let plan = Plans.inject_plan ?schemes ~pac_bits ~faults ~seed () in
        let outcome =
          Campaign.run ~workers ~progress ~policy
            ?checkpoint:(Option.map (fun path -> (path, Plans.inject_codec)) resume)
            plan
        in
        let totals = Plans.inject_totals outcome in
        Plans.pp_inject_table Format.std_formatter totals;
        print_quarantines outcome;
        let offenders =
          if no_gate then []
          else
            List.filter
              (fun (r : Inject_engine.reproducer) ->
                String.equal r.Inject_engine.scheme gate_name)
              totals.Inject_engine.silents
        in
        match offenders with
        | [] -> 0
        | rs ->
          print_reproducers rs;
          1
      end
    end
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Deterministic fault injection: corrupt return slots, chain spills, registers, \
          shadow entries, signal frames and the store-to-reload window under every hardening \
          scheme, and classify each fault as detected, benign or silent against the \
          un-faulted trace. Exits 1 with JSON reproducers when corruption is silent under \
          the gated scheme.")
    Term.(
      const action $ faults $ workers $ seed $ scheme $ pac_bits $ resume $ gate $ no_gate
      $ mega $ isolation $ shard_timeout $ shard_faults $ compact_every $ trace_arg $ quiet)

(* --- fleet: open-loop traffic simulation --------------------------------- *)

let fleet_cmd =
  let open Pacstack_campaign in
  let connections =
    Arg.(
      value
      & opt int Fleet.default.Fleet.connections
      & info [ "n"; "connections" ] ~doc:"Concurrent connections across the fleet.")
  in
  let duration =
    Arg.(
      value
      & opt float Fleet.default.Fleet.duration_s
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Virtual seconds of offered load (wall-clock free; the clock is simulated).")
  in
  let arrival =
    let names = String.concat ", " (List.map fst Fleet_arrival.presets) in
    Arg.(
      value
      & opt (enum Fleet_arrival.presets) (List.assoc "poisson" Fleet_arrival.presets)
      & info [ "arrival" ] ~docv:"PRESET" ~doc:("Arrival process: one of " ^ names ^ "."))
  in
  let cells =
    Arg.(
      value
      & opt int Fleet.default.Fleet.cells
      & info [ "cells" ]
          ~doc:
            "Independent contention cells the fleet is cut into. Part of the experiment \
             configuration (it fixes the shard structure), not a parallelism knob — that \
             is $(b,--workers).")
  in
  let cores =
    Arg.(
      value
      & opt int Fleet.default.Fleet.cores
      & info [ "cores" ] ~doc:"Server cores per cell.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "w"; "workers" ]
          ~doc:
            "Worker domains. The latency table is bit-identical for any value; 0 means one \
             per recommended domain.")
  in
  let seed =
    Arg.(
      value
      & opt int64 Fleet.default.Fleet.seed
      & info [ "seed" ]
          ~doc:"Fleet seed; connection $(i,c)'s whole arrival stream depends only on (seed, c).")
  in
  let scheme =
    Arg.(
      value
      & opt (some scheme_conv) None
      & info [ "s"; "scheme" ] ~doc:"Restrict to one hardening scheme (default: every registered scheme).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Checkpoint manifest. Created if absent; (scheme, cell) shards already recorded \
             there are restored instead of re-run.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:"Also write the per-scheme latency table as JSON to $(docv).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress events on stderr.")
  in
  let action connections duration arrival cells cores workers seed scheme resume json_out
      trace quiet =
    with_campaign_signals @@ fun () ->
    let cfg =
      {
        Fleet.connections;
        duration_s = duration;
        arrival;
        cells;
        cores;
        seed;
        schemes =
          (match scheme with Some s -> [ s ] | None -> Fleet.default.Fleet.schemes);
      }
    in
    match Fleet.validate cfg with
    | exception Invalid_argument msg ->
      Printf.eprintf "pacstack: %s\n" msg;
      1
    | () ->
      with_trace trace @@ fun obs ->
      let workers = if workers = 0 then Pool.default_workers () else workers in
      let render = if quiet then Progress.null else Progress.formatter Format.err_formatter in
      let progress e = obs e; render e in
      let json =
        Plans.fleet_execute cfg ~workers ~seed ~checkpoint:resume ~progress
          Format.std_formatter
      in
      (match json_out with
      | None -> ()
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Json.to_string json ^ "\n"));
        Printf.printf "wrote %s\n" path);
      0
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a fleet of open-loop connections against every hardening scheme in \
          virtual time and report per-scheme latency quantiles (p50/p95/p99/p999). The \
          table is bit-identical at any --workers.")
    Term.(
      const action $ connections $ duration $ arrival $ cells $ cores $ workers $ seed
      $ scheme $ resume $ json_out $ trace_arg $ quiet)

(* --- metrics: the lib/obs observability sampler --------------------------- *)

let metrics_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the collected metrics and trace events to $(docv) as JSON lines.")
  in
  let action scheme out =
    Report.observability ~scheme Format.std_formatter;
    (match out with
    | None -> ()
    | Some path ->
      Obs.Sink.write_file path;
      Printf.printf "wrote %s\n" path);
    Obs.reset ();
    0
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Enable lib/obs, run a small sampler through every instrumented layer (server \
          workload under the chosen scheme, fuzzer, fault injector) and print the metrics \
          registry plus trace summary.")
    Term.(const action $ scheme_arg $ out)

(* --- disasm: show what the loader put in the executable pages ----------- *)

let disasm_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s" ~doc:"Assembly source file.")
  in
  let action file =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Pacstack_isa.Asm.parse text with
    | exception Pacstack_isa.Asm.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      1
    | program ->
      let image = Pacstack_machine.Image.build program in
      print_endline (Pacstack_machine.Image.disassemble image);
      0
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Assemble a program, encode it to binary and disassemble the binary back.")
    Term.(const action $ file)

(* --- cc: compile and run mini-C sources ----------------------------------- *)

let cc_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc" ~doc:"mini-C source file.")
  in
  let emit_asm =
    Arg.(value & flag & info [ "S"; "emit-asm" ] ~doc:"Print the generated assembly instead of running.")
  in
  let optimize = Arg.(value & flag & info [ "O" ] ~doc:"Enable the peephole optimizer.") in
  let action scheme file emit_asm optimize =
    match Pacstack_minic.Parse.from_file file with
    | exception Pacstack_minic.Parse.Error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      1
    | ast -> (
      List.iter
        (fun d ->
          Printf.eprintf "%s: %s\n" file
            (Format.asprintf "%a" Pacstack_minic.Check.pp_diagnostic d))
        (Pacstack_minic.Check.program ast);
      match Pacstack_minic.Compile.compile ~scheme ~optimize (Pacstack_minic.Check.check_exn ast) with
      | exception Pacstack_minic.Compile.Error m ->
        Printf.eprintf "%s: %s\n" file m;
        1
      | program ->
        if emit_asm then begin
          print_string (Pacstack_isa.Asm.print program);
          0
        end
        else begin
          let machine = Machine.load program in
          report_outcome machine (Machine.run machine)
        end)
  in
  Cmd.v
    (Cmd.info "cc" ~doc:"Compile a mini-C source file under a scheme and run it.")
    Term.(const action $ scheme_arg $ file $ emit_asm $ optimize)

(* --- export: CSVs for replotting ----------------------------------------- *)

let export_cmd =
  let dir =
    Arg.(value & opt string "results" & info [ "o"; "output" ] ~doc:"Output directory.")
  in
  let action dir =
    let paths = Pacstack_report.Export.all ~dir () in
    List.iter print_endline paths;
    0
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write every table/figure as CSV for external plotting.")
    Term.(const action $ dir)

let cmds =
  [
    run_cmd;
    cc_cmd;
    fuzz_cmd;
    inject_cmd;
    fleet_cmd;
    bench_cmd;
    confirm_cmd;
    metrics_cmd;
    disasm_cmd;
    export_cmd;
    campaign_cmd;
    section_cmd "table1" "Table 1: violation success probabilities." (fun fmt ->
        Report.table1 fmt);
    section_cmd "table2" "Table 2 and Figure 5: SPEC-like overheads." Report.table2_and_figure5;
    section_cmd "table3" "Table 3: server throughput." Report.table3;
    section_cmd "attacks" "The Listing 6 attack matrix." Report.reuse_matrix;
    section_cmd "games" "Collision, masking and brute-force games." (fun fmt ->
        Report.birthday fmt;
        Report.bruteforce fmt);
    section_cmd "gadget" "The PA signing-gadget experiment." Report.gadget;
    section_cmd "sigreturn" "Sigreturn attack and the Appendix B defence." Report.sigreturn;
    section_cmd "unwind" "ACS-validated unwinding demo." Report.unwind_demo;
    section_cmd "interop" "Mixed instrumented/uninstrumented deployment (9.2)." Report.interop;
    section_cmd "cfi" "Forward-edge CFI experiments (assumption A2)." Report.forward_cfi;
    all_cmd;
  ]

let () =
  let info =
    Cmd.info "pacstack" ~version:"1.0.0"
      ~doc:"Authenticated call stack (PACStack) reproduction toolkit"
  in
  (* Cmdliner already exits 124 with a usage message on an unknown
     subcommand, a bad flag or a missing COMMAND (verified; see
     test/cli_exit_codes below dune runtest). What it does not cover is an
     action raising mid-run — map that to a message and exit 1 rather
     than an uncaught-exception backtrace. *)
  match Cmd.eval' ~catch:false (Cmd.group info cmds) with
  | code -> exit code
  | exception (Pacstack_campaign.Checkpoint.Stale_manifest _ as e) ->
    Printf.eprintf "pacstack: %s\n" (Printexc.to_string e);
    exit 2
  | exception Failure msg ->
    Printf.eprintf "pacstack: %s\n" msg;
    exit 1
  | exception Sys_error msg ->
    Printf.eprintf "pacstack: %s\n" msg;
    exit 1
